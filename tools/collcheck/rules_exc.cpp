// CC-EXC-* rules: failure-unwind safety.  Every collective/recv call in
// simmpi is a RankDeadError throw site (a peer may die mid-operation), so:
//   CC-EXC-NOEXCEPT  noexcept function (or destructor, implicitly
//                    noexcept) whose body can reach a throw site —
//                    std::terminate on the first injected failure
//   CC-EXC-RESOURCE  a manually-acquired resource (mutex .lock(), parked
//                    mailbox, uncommitted update) held across a throw
//                    site with no RAII guard to release it on unwind
//   CC-EXC-SWALLOW   a catch block naming RankDeadError that neither
//                    rethrows nor invokes recovery — the death signal is
//                    silently dropped and the survivors hang
// See DESIGN.md §13 for the throw-site model.
#include <string>
#include <vector>

#include "dataflow.hpp"
#include "tokutil.hpp"

namespace collcheck {

namespace {

// try-block regions of a function (body token spans).  A throwing call
// inside a try is assumed handled by its catch clauses.
std::vector<std::pair<std::size_t, std::size_t>> try_regions(
    const Toks& toks, const FunctionInfo& fn) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    if (!is_ident(toks[i], "try") || !is_punct(toks[i + 1], "{")) continue;
    const std::size_t close = match_bracket(toks, i + 1);
    if (close < fn.body_end) out.emplace_back(i + 2, close);
  }
  return out;
}

bool in_any(const std::vector<std::pair<std::size_t, std::size_t>>& regions,
            std::size_t tok) {
  for (const auto& [b, e] : regions) {
    if (tok >= b && tok < e) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// CC-EXC-NOEXCEPT
// ---------------------------------------------------------------------------

void check_noexcept(const SharedModel& m, std::vector<Finding>& findings) {
  const std::vector<FileUnit>& files = *m.files;
  for (const FnFacts& ff : m.fns) {
    const FileUnit& unit = files[ff.file_index];
    const FunctionInfo& fn = unit.functions[ff.fn_index];
    if (!fn.is_noexcept && !fn.is_dtor) continue;
    if (ff.swallows_all) continue;  // catch (...) firewall inside
    const Toks& toks = unit.lexed.tokens;
    const auto tries = try_regions(toks, fn);
    std::string via;
    int via_line = 0;
    for (const CallSite& c : fn.calls) {
      if (!m.call_may_throw(c)) continue;
      if (in_any(tries, c.tok)) continue;
      via = c.name;
      via_line = c.line;
      break;
    }
    if (via.empty()) {
      // Explicit `throw <Rank…Error>` outside any try.
      for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
        if (!is_ident(toks[i], "throw")) continue;
        if (in_any(tries, i)) continue;
        const Token& next = toks[i + 1];
        if (next.kind == TokKind::kIdent &&
            (next.text.find("RankDead") != std::string::npos ||
             next.text.find("RankKilled") != std::string::npos ||
             next.text.find("RankFailure") != std::string::npos)) {
          via = next.text;
          via_line = toks[i].line;
          break;
        }
      }
    }
    if (via.empty()) continue;
    const char* what = fn.is_dtor && !fn.is_noexcept
                           ? "destructor (implicitly noexcept)"
                           : "noexcept function";
    findings.push_back(Finding{
        std::string(kRuleExcNoexcept), unit.path, fn.line,
        std::string(what) + " '" + fn.name +
            "' can reach a RankDeadError throw site via '" + via +
            "' (line " + std::to_string(via_line) +
            "); a failure here is std::terminate, not recovery"});
  }
}

// ---------------------------------------------------------------------------
// CC-EXC-RESOURCE
// ---------------------------------------------------------------------------

void check_resource(const SharedModel& m, std::vector<Finding>& findings) {
  const std::vector<FileUnit>& files = *m.files;
  for (const FnFacts& ff : m.fns) {
    const FileUnit& unit = files[ff.file_index];
    const FunctionInfo& fn = unit.functions[ff.fn_index];
    const Toks& toks = unit.lexed.tokens;
    const auto tries = try_regions(toks, fn);
    for (const ManualSpan& span : ff.guards.manual) {
      for (const CallSite& c : fn.calls) {
        if (c.tok <= span.open_tok || c.tok >= span.close_tok) continue;
        if (!m.call_may_throw(c)) continue;
        if (in_any(tries, c.tok)) continue;
        findings.push_back(Finding{
            std::string(kRuleExcResource), unit.path, span.line,
            "non-RAII " + span.what + " is held across '" + c.name +
                "' (line " + std::to_string(c.line) +
                "), which can throw RankDeadError; unwinding leaks the "
                "resource — use a guard object or release before the "
                "call"});
        break;  // one finding per span
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CC-EXC-SWALLOW
// ---------------------------------------------------------------------------

// Tokens that count as "the handler engaged the failure protocol":
// rethrow, ULFM-style shrink, the recovery service, runtime bookkeeping
// (rank_died/record_primary), or arming the comm's fail_pending_ latch.
bool has_recovery_token(const Toks& toks, std::size_t b, std::size_t e) {
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& s = toks[i].text;
    if (s == "throw" || s == "rethrow_exception" || s == "shrink" ||
        s == "recover" || s == "recover_world" || s == "rank_died" ||
        s == "record_primary" || s == "fail_pending_") {
      return true;
    }
  }
  return false;
}

void check_swallow(const SharedModel& m, std::vector<Finding>& findings) {
  for (const FileUnit& unit : *m.files) {
    const Toks& toks = unit.lexed.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], "catch") || !is_punct(toks[i + 1], "(")) {
        continue;
      }
      const std::size_t close = match_bracket(toks, i + 1);
      if (close >= toks.size()) continue;
      bool names_rankdead = false;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (toks[k].kind == TokKind::kIdent &&
            toks[k].text.find("RankDeadError") != std::string::npos) {
          names_rankdead = true;
          break;
        }
      }
      if (!names_rankdead) continue;
      if (close + 1 >= toks.size() || !is_punct(toks[close + 1], "{")) {
        continue;
      }
      const std::size_t bend = match_bracket(toks, close + 1);
      if (bend >= toks.size()) continue;
      if (has_recovery_token(toks, close + 2, bend)) continue;
      // An empty handler immediately followed by recovery is the
      // documented observe-then-shrink idiom (survivors note the death,
      // then collectively recover): look a short distance past the block.
      if (bend == close + 2 &&
          has_recovery_token(toks, bend + 1,
                             std::min(bend + 40, toks.size()))) {
        continue;
      }
      findings.push_back(Finding{
          std::string(kRuleExcSwallow), unit.path, toks[i].line,
          "catch block swallows RankDeadError without rethrowing or "
          "invoking recovery (shrink/recover_world); the death signal is "
          "lost and surviving ranks will hang in the next collective"});
    }
  }
}

}  // namespace

void run_exc_rules(const SharedModel& m, std::vector<Finding>& findings) {
  check_noexcept(m, findings);
  check_resource(m, findings);
  check_swallow(m, findings);
}

}  // namespace collcheck
