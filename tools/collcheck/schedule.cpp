#include "schedule.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analyzer.hpp"
#include "dataflow.hpp"
#include "taint.hpp"
#include "tokutil.hpp"

namespace collcheck {

namespace {

using Kind = SchedNode::Kind;

// Same registry the per-call rules use; collcheck and the runtime can
// never disagree about what counts as a collective.
const std::unordered_set<std::string>& sched_collective_names() {
  static const std::unordered_set<std::string> kNames = {
#define COLLREP_COLLECTIVE_OBS(Name, str) str,
#define COLLREP_COLLECTIVE_ALIAS(str) str,
#include "obs/collectives.def"
  };
  return kNames;
}

[[nodiscard]] bool sched_is_collective(const CallSite& c) {
  if (c.method) return c.name == "barrier" || c.name == "win_create";
  if (!sched_collective_names().contains(c.name)) return false;
  return c.qualifier.empty() || c.qualifier == "simmpi";
}

[[nodiscard]] bool sched_is_p2p(const CallSite& c) {
  return c.name == "send_bytes" || c.name == "send_value" ||
         c.name == "recv_bytes" || c.name == "recv_value";
}

// Calls that legitimately terminate a RankDeadError unwind path: the
// handler hands control to the failure protocol instead of running its
// own collectives.
[[nodiscard]] bool is_sanctioned_recovery(const std::string& name) {
  return name == "shrink" || name == "recover_world" || name == "recover";
}

// ---------------------------------------------------------------------------
// Automaton construction: one structural walk per function body.
// ---------------------------------------------------------------------------

struct BuildCtx {
  const Toks* toks = nullptr;
  TaintCtx taint;
  std::unordered_map<std::size_t, const CallSite*> call_at;
};

[[nodiscard]] bool span_mentions(const Toks& toks, std::size_t b,
                                 std::size_t e, std::string_view word) {
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    if (is_ident(toks[i], word)) return true;
  }
  return false;
}

SchedNode walk_span(BuildCtx& bc, std::size_t b, std::size_t e);

// Parse a control header `kw [ident] ( ... )`; returns false when the
// shape is not there.  `open`/`close` delimit the parenthesized header.
[[nodiscard]] bool parse_header(const Toks& toks, std::size_t kw,
                                std::size_t e, std::size_t& open,
                                std::size_t& close) {
  open = kw + 1;
  // `if constexpr (...)` — skip one identifier between keyword and "(".
  if (open < e && toks[open].kind == TokKind::kIdent) ++open;
  if (open >= e || !is_punct(toks[open], "(")) return false;
  close = match_bracket(toks, open);
  return close < e;
}

// Parse the region after a control header: `{ ... }` or a single
// statement.  Returns the walked subtree and sets `past` one past it.
SchedNode walk_branch(BuildCtx& bc, std::size_t body_b, std::size_t e,
                      std::size_t& past, std::size_t& body_e) {
  const Toks& toks = *bc.toks;
  if (body_b < e && is_punct(toks[body_b], "{")) {
    body_e = std::min(match_bracket(toks, body_b), e);
    past = body_e + 1;
    return walk_span(bc, body_b + 1, body_e);
  }
  body_e = stmt_end(toks, body_b, e);
  past = body_e + 1;
  return walk_span(bc, body_b, body_e);
}

[[nodiscard]] bool inherited_divergent(const BuildCtx& bc, std::size_t kw) {
  return kw < bc.taint.tainted_at.size() && bc.taint.tainted_at[kw] != 0;
}

// `if`/`else if`/`else` chain -> one kAlt with a branch per arm plus a
// trailing empty branch when there is no final `else`.
SchedNode walk_if_chain(BuildCtx& bc, std::size_t i, std::size_t e,
                        std::size_t& resume) {
  const Toks& toks = *bc.toks;
  SchedNode alt;
  alt.kind = Kind::kAlt;
  alt.line = toks[i].line;
  alt.divergent = inherited_divergent(bc, i);
  bool has_else = false;
  std::size_t k = i;
  resume = kNpos;
  while (true) {
    std::size_t open = 0;
    std::size_t close = 0;
    if (!parse_header(toks, k, e, open, close)) break;
    if (span_tainted(bc.taint, open + 1, close)) alt.divergent = true;
    std::size_t past = 0;
    std::size_t body_e = 0;
    alt.children.push_back(walk_branch(bc, close + 1, e, past, body_e));
    alt.branch_exits.push_back(
        span_mentions(toks, close + 1, body_e + 1, "return") ? 1 : 0);
    if (past < e && is_ident(toks[past], "else")) {
      const std::size_t eb = past + 1;
      if (eb < e && is_ident(toks[eb], "if")) {
        k = eb;
        continue;  // else-if: next arm of the same alt
      }
      has_else = true;
      std::size_t epast = 0;
      std::size_t ebody_e = 0;
      alt.children.push_back(walk_branch(bc, eb, e, epast, ebody_e));
      alt.branch_exits.push_back(
          span_mentions(toks, eb, ebody_e + 1, "return") ? 1 : 0);
      resume = epast;
    } else {
      resume = past;
    }
    break;
  }
  if (!has_else && !alt.children.empty()) {
    SchedNode empty;
    empty.kind = Kind::kSeq;
    empty.line = alt.line;
    alt.children.push_back(std::move(empty));
    alt.branch_exits.push_back(0);
  }
  return alt;
}

// `switch` -> kAlt with one branch per top-level case/default segment.
// Fallthrough between cases is not modeled (DESIGN.md §15 false
// negatives); each segment is treated as an independent branch.
SchedNode walk_switch(BuildCtx& bc, std::size_t i, std::size_t e,
                      std::size_t& resume) {
  const Toks& toks = *bc.toks;
  resume = kNpos;
  std::size_t open = 0;
  std::size_t close = 0;
  if (!parse_header(toks, i, e, open, close)) return {};
  SchedNode alt;
  alt.kind = Kind::kAlt;
  alt.line = toks[i].line;
  alt.divergent =
      inherited_divergent(bc, i) || span_tainted(bc.taint, open + 1, close);
  const std::size_t body_b = close + 1;
  if (body_b >= e || !is_punct(toks[body_b], "{")) return {};
  const std::size_t body_e = std::min(match_bracket(toks, body_b), e);
  resume = body_e + 1;
  // Segment boundaries: `case <expr>:` / `default:` at switch-brace depth.
  std::vector<std::size_t> starts;
  int depth = 0;
  for (std::size_t j = body_b + 1; j < body_e; ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "{") || is_punct(t, "(") || is_punct(t, "[")) {
      ++depth;
    } else if (is_punct(t, "}") || is_punct(t, ")") || is_punct(t, "]")) {
      --depth;
    } else if (depth == 0 &&
               (is_ident(t, "case") || is_ident(t, "default"))) {
      std::size_t colon = j + 1;
      while (colon < body_e && !is_punct(toks[colon], ":")) ++colon;
      if (colon < body_e) starts.push_back(colon + 1);
      j = colon;
    }
  }
  if (starts.empty()) {
    alt.children.push_back(walk_span(bc, body_b + 1, body_e));
    alt.branch_exits.push_back(
        span_mentions(toks, body_b + 1, body_e, "return") ? 1 : 0);
  } else {
    for (std::size_t s = 0; s < starts.size(); ++s) {
      const std::size_t seg_b = starts[s];
      const std::size_t seg_e = s + 1 < starts.size()
                                    ? starts[s + 1]
                                    : body_e;
      alt.children.push_back(walk_span(bc, seg_b, seg_e));
      alt.branch_exits.push_back(
          span_mentions(toks, seg_b, seg_e, "return") ? 1 : 0);
    }
  }
  // Without a `default:` segment the switch may match nothing.
  if (!starts.empty() &&
      !span_mentions(toks, body_b + 1, body_e, "default")) {
    SchedNode empty;
    empty.kind = Kind::kSeq;
    empty.line = alt.line;
    alt.children.push_back(std::move(empty));
    alt.branch_exits.push_back(0);
  }
  return alt;
}

// `try { } catch (T) { } ...` -> kTry with the caught type names.  The
// recorded type is the first non-cv identifier in the clause ("..." for
// ellipsis), which is what the RankDead matching needs.
SchedNode walk_try(BuildCtx& bc, std::size_t i, std::size_t e,
                   std::size_t& resume) {
  const Toks& toks = *bc.toks;
  resume = kNpos;
  const std::size_t body_b = i + 1;
  if (body_b >= e || !is_punct(toks[body_b], "{")) return {};
  const std::size_t body_e = std::min(match_bracket(toks, body_b), e);
  SchedNode node;
  node.kind = Kind::kTry;
  node.line = toks[i].line;
  node.children.push_back(walk_span(bc, body_b + 1, body_e));
  std::size_t k = body_e + 1;
  while (k < e && is_ident(toks[k], "catch")) {
    const int catch_line = toks[k].line;
    const std::size_t po = k + 1;
    if (po >= e || !is_punct(toks[po], "(")) break;
    const std::size_t pc = std::min(match_bracket(toks, po), e);
    std::string type = "...";
    for (std::size_t a = po + 1; a < pc; ++a) {
      if (toks[a].kind != TokKind::kIdent) continue;
      const std::string& s = toks[a].text;
      if (s == "const" || s == "volatile" || s == "struct" || s == "class") {
        continue;
      }
      // Accumulate the qualified type name (ns::ns::Type); the exception
      // variable, if any, is separated by &/* and never follows a "::".
      type = s;
      std::size_t q = a + 1;
      while (q + 1 < pc && is_punct(toks[q], "::") &&
             toks[q + 1].kind == TokKind::kIdent) {
        type += "::" + toks[q + 1].text;
        q += 2;
      }
      break;
    }
    const std::size_t hb = pc + 1;
    if (hb >= e || !is_punct(toks[hb], "{")) break;
    const std::size_t hc = std::min(match_bracket(toks, hb), e);
    SchedNode handler = walk_span(bc, hb + 1, hc);
    handler.line = catch_line;
    node.catch_types.push_back(std::move(type));
    node.children.push_back(std::move(handler));
    k = hc + 1;
  }
  resume = k;
  return node;
}

SchedNode walk_span(BuildCtx& bc, std::size_t b, std::size_t e) {
  const Toks& toks = *bc.toks;
  SchedNode seq;
  seq.kind = Kind::kSeq;
  if (b < e && b < toks.size()) seq.line = toks[b].line;
  std::size_t i = b;
  while (i < e) {
    const Token& t = toks[i];

    if (is_ident(t, "if")) {
      std::size_t resume = kNpos;
      SchedNode alt = walk_if_chain(bc, i, e, resume);
      if (resume == kNpos) {
        ++i;  // malformed header; skip the keyword
        continue;
      }
      if (!alt.children.empty()) seq.children.push_back(std::move(alt));
      i = resume;
      continue;
    }
    if (is_ident(t, "while") || is_ident(t, "for")) {
      std::size_t open = 0;
      std::size_t close = 0;
      if (!parse_header(toks, i, e, open, close)) {
        ++i;
        continue;
      }
      SchedNode loop;
      loop.kind = Kind::kLoop;
      loop.line = t.line;
      loop.divergent = inherited_divergent(bc, i) ||
                       span_tainted(bc.taint, open + 1, close);
      std::size_t past = 0;
      std::size_t body_e = 0;
      loop.children.push_back(walk_branch(bc, close + 1, e, past, body_e));
      seq.children.push_back(std::move(loop));
      i = past;
      continue;
    }
    if (is_ident(t, "switch")) {
      std::size_t resume = kNpos;
      SchedNode alt = walk_switch(bc, i, e, resume);
      if (resume == kNpos) {
        ++i;
        continue;
      }
      if (!alt.children.empty()) seq.children.push_back(std::move(alt));
      i = resume;
      continue;
    }
    if (is_ident(t, "try")) {
      std::size_t resume = kNpos;
      SchedNode node = walk_try(bc, i, e, resume);
      if (resume == kNpos) {
        ++i;
        continue;
      }
      seq.children.push_back(std::move(node));
      i = resume;
      continue;
    }
    if (is_punct(t, "{")) {
      // Plain block (or lambda body): splice its sequence inline.
      const std::size_t close = std::min(match_bracket(toks, i), e);
      SchedNode sub = walk_span(bc, i + 1, close);
      for (SchedNode& c : sub.children) {
        seq.children.push_back(std::move(c));
      }
      i = close + 1;
      continue;
    }
    const auto cit = bc.call_at.find(i);
    if (cit != bc.call_at.end()) {
      const CallSite& c = *cit->second;
      SchedNode n;
      n.line = c.line;
      if (sched_is_collective(c)) {
        n.kind = Kind::kOp;
        n.name = c.name;
      } else if (sched_is_p2p(c)) {
        n.kind = Kind::kOp;
        n.name = c.name;
        n.p2p = true;
      } else {
        n.kind = Kind::kCall;
        n.name = c.name;
      }
      seq.children.push_back(std::move(n));
      ++i;
      continue;
    }
    ++i;
  }
  return seq;
}

// ---------------------------------------------------------------------------
// Inter-procedural composition
// ---------------------------------------------------------------------------

struct FnSched {
  const FileUnit* unit = nullptr;
  const FunctionInfo* fn = nullptr;
  SchedNode root;
};

void gather_summary(const SchedNode& n, bool& has_op,
                    std::vector<std::string>& calls) {
  if (n.kind == Kind::kOp) {
    has_op = true;
    return;
  }
  if (n.kind == Kind::kCall) {
    calls.push_back(n.name);
    return;
  }
  for (const SchedNode& c : n.children) gather_summary(c, has_op, calls);
}

constexpr int kExpandDepth = 6;

struct Engine {
  std::vector<FnSched> fns;
  // Name -> all definitions, sorted by (path, line); the lexically first
  // is the canonical one expansions inline (DESIGN.md §15).
  std::map<std::string, std::vector<const FnSched*>> by_name;
  // Name-collapsed "reaches any op" fixpoint, the pruning predicate for
  // call-node expansion.
  std::unordered_map<std::string, bool> bearing;

  std::unordered_map<std::string, std::vector<std::string>> ops_memo;
  std::set<std::string> ops_busy;
  std::map<std::pair<std::string, int>, std::string> render_memo;
  std::set<std::string> render_busy;

  [[nodiscard]] bool is_bearing(const std::string& name) const {
    const auto it = bearing.find(name);
    return it != bearing.end() && it->second;
  }
  [[nodiscard]] const FnSched* canon(const std::string& name) const {
    const auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : it->second.front();
  }
};

Engine build_engine(const std::vector<FileUnit>& files) {
  Engine eng;
  for (const FileUnit& u : files) {
    for (const FunctionInfo& f : u.functions) {
      BuildCtx bc;
      bc.toks = &u.lexed.tokens;
      bc.taint.toks = bc.toks;
      bc.taint.tainted_at.assign(bc.toks->size(), 0);
      collect_tainted_vars(bc.taint, f.body_begin, f.body_end);
      (void)walk_region(bc.taint, f.body_begin, f.body_end, false, false);
      for (const CallSite& c : f.calls) bc.call_at.emplace(c.tok, &c);
      FnSched fs;
      fs.unit = &u;
      fs.fn = &f;
      fs.root = walk_span(bc, f.body_begin, f.body_end);
      eng.fns.push_back(std::move(fs));
    }
  }
  for (const FnSched& fs : eng.fns) {
    eng.by_name[fs.fn->name].push_back(&fs);
  }
  for (auto& [name, defs] : eng.by_name) {
    std::sort(defs.begin(), defs.end(),
              [](const FnSched* a, const FnSched* b) {
                return std::tie(a->unit->path, a->fn->line) <
                       std::tie(b->unit->path, b->fn->line);
              });
  }
  // Op-bearing fixpoint (any definition counts, like the CC-COLL-DIV-CALL
  // bearing map).
  std::map<std::string, std::vector<std::string>> callees;
  for (const FnSched& fs : eng.fns) {
    bool has_op = false;
    std::vector<std::string> calls;
    gather_summary(fs.root, has_op, calls);
    auto& b = eng.bearing[fs.fn->name];
    b = b || has_op;
    auto& cs = callees[fs.fn->name];
    cs.insert(cs.end(), calls.begin(), calls.end());
  }
  bool changed = true;
  int rounds = 0;
  while (changed && ++rounds < 64) {
    changed = false;
    for (auto& [name, cs] : callees) {
      if (eng.bearing[name]) continue;
      for (const std::string& c : cs) {
        const auto it = eng.bearing.find(c);
        if (it != eng.bearing.end() && it->second) {
          eng.bearing[name] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return eng;
}

// ---------------------------------------------------------------------------
// Canonical collective content: multiset atoms and ordered signatures
// ---------------------------------------------------------------------------

std::vector<std::string> ops_of_name(Engine& eng, const std::string& name);

// Flatten a subtree to its collective "atoms": op names, plus composite
// atoms for structure the flattening cannot erase — an invariant alt whose
// branches differ contributes `{a|b}`, a loop body contributes `(a)*`.
// p2p ops are excluded: rank-guarded send/recv is the normal root/leaf
// protocol shape, not schedule divergence.
void ops_of_node(Engine& eng, const SchedNode& n,
                 std::vector<std::string>& out) {
  switch (n.kind) {
    case Kind::kOp:
      if (!n.p2p) out.push_back(n.name);
      return;
    case Kind::kCall:
      if (eng.is_bearing(n.name)) {
        const std::vector<std::string> callee = ops_of_name(eng, n.name);
        out.insert(out.end(), callee.begin(), callee.end());
      }
      return;
    case Kind::kSeq:
      for (const SchedNode& c : n.children) ops_of_node(eng, c, out);
      return;
    case Kind::kAlt: {
      std::vector<std::vector<std::string>> branches;
      for (const SchedNode& c : n.children) {
        std::vector<std::string> b;
        ops_of_node(eng, c, b);
        std::sort(b.begin(), b.end());
        branches.push_back(std::move(b));
      }
      const bool all_equal = std::all_of(
          branches.begin(), branches.end(),
          [&](const std::vector<std::string>& b) { return b == branches[0]; });
      if (all_equal) {
        out.insert(out.end(), branches[0].begin(), branches[0].end());
        return;
      }
      std::string atom = "{";
      for (std::size_t i = 0; i < branches.size(); ++i) {
        if (i != 0) atom += "|";
        std::string joined;
        for (const std::string& o : branches[i]) {
          if (!joined.empty()) joined += ",";
          joined += o;
        }
        atom += joined.empty() ? "-" : joined;
      }
      atom += "}";
      out.push_back(std::move(atom));
      return;
    }
    case Kind::kLoop: {
      std::vector<std::string> body;
      for (const SchedNode& c : n.children) ops_of_node(eng, c, body);
      if (body.empty()) return;
      std::sort(body.begin(), body.end());
      std::string atom = "(";
      for (std::size_t i = 0; i < body.size(); ++i) {
        if (i != 0) atom += ",";
        atom += body[i];
      }
      atom += ")*";
      out.push_back(std::move(atom));
      return;
    }
    case Kind::kTry:
      // Normal path only; the unwind path has its own rule.
      if (!n.children.empty()) ops_of_node(eng, n.children.front(), out);
      return;
  }
}

std::vector<std::string> ops_of_name(Engine& eng, const std::string& name) {
  const auto memo = eng.ops_memo.find(name);
  if (memo != eng.ops_memo.end()) return memo->second;
  if (eng.ops_busy.contains(name)) return {};  // recursion: cut the cycle
  const FnSched* fs = eng.canon(name);
  if (fs == nullptr) return {};
  eng.ops_busy.insert(name);
  std::vector<std::string> out;
  ops_of_node(eng, fs->root, out);
  eng.ops_busy.erase(name);
  eng.ops_memo.emplace(name, out);
  return out;
}

[[nodiscard]] std::vector<std::string> sorted_ops(Engine& eng,
                                                  const SchedNode& n) {
  std::vector<std::string> out;
  ops_of_node(eng, n, out);
  std::sort(out.begin(), out.end());
  return out;
}

[[nodiscard]] std::string join_ops(const std::vector<std::string>& ops) {
  if (ops.empty()) return "(none)";
  std::string out;
  for (const std::string& o : ops) {
    if (!out.empty()) out += ",";
    out += o;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Canonical rendering (shared by CC-SCHED-ORDER signatures and the
// --dump-schedules artifact)
// ---------------------------------------------------------------------------

// kDump is the --dump-schedules artifact: p2p ops shown, callees inlined
// under their names.  kSig is the CC-SCHED-ORDER signature: collectives
// only, callees inlined transparently so two helpers with identical
// schedules compare equal regardless of their names.
enum class RenderMode { kSig, kDump };

std::string render_name(Engine& eng, const std::string& name, int depth,
                        RenderMode mode);

// Canonicalized text form.  Empty string == "no collective content":
// callers drop such subtrees.
std::string render_node(Engine& eng, const SchedNode& n, int depth,
                        RenderMode mode) {
  switch (n.kind) {
    case Kind::kOp:
      if (n.p2p && mode != RenderMode::kDump) return {};
      return n.p2p ? "p2p:" + n.name : n.name;
    case Kind::kCall: {
      if (!eng.is_bearing(n.name)) return {};
      if (depth <= 0) {
        return mode == RenderMode::kDump ? n.name + "{...}"
                                         : std::string("...");
      }
      const std::string inner = render_name(eng, n.name, depth - 1, mode);
      if (mode != RenderMode::kDump) return inner;
      if (inner.empty()) return {};
      return n.name + "{ " + inner + " }";
    }
    case Kind::kSeq: {
      std::string out;
      for (const SchedNode& c : n.children) {
        const std::string r = render_node(eng, c, depth, mode);
        if (r.empty()) continue;
        if (!out.empty()) out += " ; ";
        out += r;
      }
      return out;
    }
    case Kind::kAlt: {
      std::vector<std::string> branches;
      branches.reserve(n.children.size());
      for (const SchedNode& c : n.children) {
        branches.push_back(render_node(eng, c, depth, mode));
      }
      const bool all_equal = std::all_of(
          branches.begin(), branches.end(),
          [&](const std::string& b) { return b == branches[0]; });
      if (all_equal) return branches[0];  // collapse: schedule-equal arms
      std::string out = n.divergent ? "alt[rank]( " : "alt[cfg]( ";
      for (std::size_t i = 0; i < branches.size(); ++i) {
        if (i != 0) out += " | ";
        out += branches[i].empty() ? "-" : branches[i];
      }
      out += " )";
      return out;
    }
    case Kind::kLoop: {
      std::string body;
      for (const SchedNode& c : n.children) {
        const std::string r = render_node(eng, c, depth, mode);
        if (r.empty()) continue;
        if (!body.empty()) body += " ; ";
        body += r;
      }
      if (body.empty()) return {};
      return (n.divergent ? std::string("loop[rank]( ")
                          : std::string("loop[cfg]( ")) +
             body + " )";
    }
    case Kind::kTry: {
      if (n.children.empty()) return {};
      const std::string body =
          render_node(eng, n.children.front(), depth, mode);
      std::string handlers;
      for (std::size_t h = 1; h < n.children.size(); ++h) {
        const std::string hr = render_node(eng, n.children[h], depth, mode);
        if (hr.empty()) continue;
        handlers += " catch<" + n.catch_types[h - 1] + ">( " + hr + " )";
      }
      if (body.empty() && handlers.empty()) return {};
      return "try( " + (body.empty() ? "-" : body) + " )" + handlers;
    }
  }
  return {};
}

std::string render_name(Engine& eng, const std::string& name, int depth,
                        RenderMode mode) {
  // The memo is only safe for dump rendering (sig rendering recomputes;
  // it is shallow — one divergent alt's branches at a time).
  if (mode == RenderMode::kDump) {
    const auto memo = eng.render_memo.find({name, depth});
    if (memo != eng.render_memo.end()) return memo->second;
  }
  if (eng.render_busy.contains(name)) {
    return mode == RenderMode::kDump ? "@" + name : std::string("...");
  }
  const FnSched* fs = eng.canon(name);
  if (fs == nullptr) return {};
  eng.render_busy.insert(name);
  const std::string out = render_node(eng, fs->root, depth, mode);
  eng.render_busy.erase(name);
  if (mode == RenderMode::kDump) {
    eng.render_memo.emplace(std::make_pair(name, depth), out);
  }
  return out;
}

// Ordered collective signature of a subtree, for CC-SCHED-ORDER.
[[nodiscard]] std::string sig_of(Engine& eng, const SchedNode& n) {
  return render_node(eng, n, kExpandDepth, RenderMode::kSig);
}

// ---------------------------------------------------------------------------
// CC-SCHED rules
// ---------------------------------------------------------------------------

enum class UScan { kFall, kStop, kOffend };

// Scan an unwind handler in schedule order for the first collective
// content reached before a sanctioned recovery call.
UScan scan_unwind(Engine& eng, const SchedNode& n, const SchedNode** off) {
  switch (n.kind) {
    case Kind::kOp:
      if (n.p2p) return UScan::kFall;
      *off = &n;
      return UScan::kOffend;
    case Kind::kCall:
      if (is_sanctioned_recovery(n.name)) return UScan::kStop;
      if (eng.is_bearing(n.name)) {
        *off = &n;
        return UScan::kOffend;
      }
      return UScan::kFall;
    case Kind::kSeq:
      for (const SchedNode& c : n.children) {
        const UScan r = scan_unwind(eng, c, off);
        if (r != UScan::kFall) return r;
      }
      return UScan::kFall;
    case Kind::kAlt: {
      bool all_stop = !n.children.empty();
      for (const SchedNode& c : n.children) {
        const UScan r = scan_unwind(eng, c, off);
        if (r == UScan::kOffend) return r;
        if (r != UScan::kStop) all_stop = false;
      }
      return all_stop ? UScan::kStop : UScan::kFall;
    }
    case Kind::kLoop:
      for (const SchedNode& c : n.children) {
        const UScan r = scan_unwind(eng, c, off);
        if (r == UScan::kOffend) return r;
      }
      return UScan::kFall;  // zero iterations are possible: keep scanning
    case Kind::kTry:
      return n.children.empty() ? UScan::kFall
                                : scan_unwind(eng, n.children.front(), off);
  }
  return UScan::kFall;
}

struct RuleVisitor {
  Engine* eng = nullptr;
  const FnSched* fs = nullptr;
  std::vector<Finding>* findings = nullptr;

  void emit(std::string_view rule, int line, std::string msg) const {
    findings->push_back(Finding{std::string(rule), fs->unit->path, line,
                                std::move(msg)});
  }

  void check_alt(const SchedNode& n) const {
    if (!n.divergent) return;
    std::vector<std::vector<std::string>> bops;
    bops.reserve(n.children.size());
    for (const SchedNode& c : n.children) {
      bops.push_back(sorted_ops(*eng, c));
    }
    for (std::size_t i = 1; i < bops.size(); ++i) {
      if (bops[i] != bops[0]) {
        emit(kRuleSchedDiv, n.line,
             "rank-dependent branches execute different collective "
             "schedules: [" +
                 join_ops(bops[0]) + "] vs [" + join_ops(bops[i]) +
                 "]; every rank must run the same collective sequence");
        return;
      }
    }
    if (bops[0].empty()) return;  // no collective content: nothing to order
    std::vector<std::string> sigs;
    sigs.reserve(n.children.size());
    for (const SchedNode& c : n.children) sigs.push_back(sig_of(*eng, c));
    for (std::size_t i = 1; i < sigs.size(); ++i) {
      if (sigs[i] != sigs[0]) {
        emit(kRuleSchedOrder, n.line,
             "rank-dependent branches reorder the collective schedule: '" +
                 sigs[0] + "' vs '" + sigs[i] +
                 "'; ranks taking different branches will cross-match "
                 "collectives");
        return;
      }
    }
  }

  void check_loop(const SchedNode& n) const {
    if (!n.divergent) return;
    std::vector<std::string> body;
    for (const SchedNode& c : n.children) ops_of_node(*eng, c, body);
    if (body.empty()) return;
    std::sort(body.begin(), body.end());
    emit(kRuleSchedLoop, n.line,
         "collective schedule [" + join_ops(body) +
             "] executes inside a loop whose trip count is rank-dependent; "
             "ranks will run different numbers of collective rounds");
  }

  void check_try(const SchedNode& n) const {
    for (std::size_t h = 1; h < n.children.size(); ++h) {
      if (n.catch_types[h - 1].find("RankDead") == std::string::npos) {
        continue;
      }
      const SchedNode* off = nullptr;
      if (scan_unwind(*eng, n.children[h], &off) == UScan::kOffend &&
          off != nullptr) {
        emit(kRuleSchedUnwind, off->line,
             "'" + off->name +
                 "' executes on the RankDeadError unwind path before "
                 "shrink/recover_world; ranks that did not observe the "
                 "failure never run it and the schedules diverge");
      }
    }
  }

  // kSeq iteration also handles the skipped-tail CC-SCHED-DIV variant:
  // a rank-dependent early return makes everything after the alt
  // single-sided.
  void visit_seq(const SchedNode& seq) const {
    for (std::size_t j = 0; j < seq.children.size(); ++j) {
      const SchedNode& c = seq.children[j];
      visit(c);
      if (c.kind != Kind::kAlt || !c.divergent) continue;
      const bool exits = std::any_of(c.branch_exits.begin(),
                                     c.branch_exits.end(),
                                     [](unsigned char x) { return x != 0; });
      if (!exits) continue;
      std::vector<std::string> tail;
      for (std::size_t k = j + 1; k < seq.children.size(); ++k) {
        ops_of_node(*eng, seq.children[k], tail);
      }
      if (tail.empty()) continue;
      std::sort(tail.begin(), tail.end());
      emit(kRuleSchedDiv, c.line,
           "rank-dependent early return skips the subsequent collective "
           "schedule [" +
               join_ops(tail) +
               "]; returning ranks never reach these collectives");
    }
  }

  void visit(const SchedNode& n) const {
    switch (n.kind) {
      case Kind::kSeq:
        visit_seq(n);
        return;
      case Kind::kAlt:
        check_alt(n);
        for (const SchedNode& c : n.children) visit(c);
        return;
      case Kind::kLoop:
        check_loop(n);
        for (const SchedNode& c : n.children) visit(c);
        return;
      case Kind::kTry:
        check_try(n);
        for (const SchedNode& c : n.children) visit(c);
        return;
      case Kind::kOp:
      case Kind::kCall:
        return;
    }
  }
};

}  // namespace

void run_schedule_rules(const std::vector<FileUnit>& files,
                        std::vector<Finding>& findings) {
  Engine eng = build_engine(files);
  for (const FnSched& fs : eng.fns) {
    RuleVisitor v{&eng, &fs, &findings};
    v.visit(fs.root);
  }
}

// ---------------------------------------------------------------------------
// CC-FIBER rules
// ---------------------------------------------------------------------------

void run_fiber_rules(const SharedModel& m, std::vector<Finding>& findings) {
  static const std::unordered_set<std::string> kWaitMethods = {
      "wait", "wait_for", "wait_until"};
  static const std::unordered_set<std::string> kSleepCalls = {
      "sleep_for", "sleep_until", "sleep", "usleep", "nanosleep"};

  const auto sim_path = [](const FileUnit& u) {
    const int r = layer_rank(u.component);
    return r >= 0 && r < 100;
  };

  for (const FnFacts& ff : m.fns) {
    const FileUnit& unit = (*m.files)[ff.file_index];
    if (!sim_path(unit)) continue;
    const FunctionInfo& fn = unit.functions[ff.fn_index];
    for (const CallSite& c : fn.calls) {
      if (c.method && kWaitMethods.contains(c.name)) {
        findings.push_back(Finding{
            std::string(kRuleFiberBlock), unit.path, c.line,
            "'" + (c.receiver.empty() ? c.name : c.receiver + "." + c.name) +
                "' blocks the OS thread; under the fiber scheduler this "
                "stalls every rank hosted on it — use the sim-aware wait "
                "or annotate '// collcheck: fiber-safe'"});
        continue;
      }
      if (!c.method && kSleepCalls.contains(c.name)) {
        findings.push_back(Finding{
            std::string(kRuleFiberBlock), unit.path, c.line,
            "'" + c.name +
                "' sleeps the OS thread; under the fiber scheduler this "
                "stalls every rank hosted on it — charge simulated time "
                "instead or annotate '// collcheck: fiber-safe'"});
        continue;
      }
      const bool blocking_comm =
          sched_is_collective(c) ||
          (c.method && (c.name == "recv_bytes" || c.name == "recv_value"));
      if (blocking_comm) {
        const std::vector<std::string>& held = ff.guards.held_at(c.tok);
        if (!held.empty()) {
          findings.push_back(Finding{
              std::string(kRuleFiberBlock), unit.path, c.line,
              "mutex '" + held.front() + "' is held across blocking '" +
                  c.name +
                  "'; when the blocked rank yields its fiber, any other "
                  "rank contending for the lock deadlocks the scheduler"});
        }
      }
    }
  }

  // thread_local storage is per-OS-thread; with many ranks per thread it
  // silently aliases state across ranks.
  std::set<std::pair<std::string, int>> seen;
  for (const FileUnit& u : *m.files) {
    if (!sim_path(u)) continue;
    for (const Token& t : u.lexed.tokens) {
      if (!is_ident(t, "thread_local")) continue;
      if (!seen.emplace(u.path, t.line).second) continue;
      findings.push_back(Finding{
          std::string(kRuleFiberTls), u.path, t.line,
          "thread_local state in a sim component aliases across all ranks "
          "hosted on one OS thread under the fiber scheduler; key the "
          "state by rank (or annotate '// collcheck: fiber-safe')"});
    }
  }
}

// ---------------------------------------------------------------------------
// --dump-schedules
// ---------------------------------------------------------------------------

std::string dump_schedules(const std::vector<FileUnit>& files) {
  Engine eng = build_engine(files);
  // Entry labels follow the public API names; the snapshot format is part
  // of the CI drift gate and must stay byte-stable for identical input.
  static constexpr std::pair<const char*, const char*> kEntries[] = {
      {"DUMP_OUTPUT", "dump_output"},
      {"checkpoint_now", "checkpoint_now"},
      {"recover_world", "recover_world"},
      {"repair_replicas", "repair_replicas"},
      {"pfs_restore", "pfs_restore"},
  };
  std::ostringstream out;
  out << "# collcheck --dump-schedules snapshot (format v1)\n"
      << "# Canonical collective schedule per public entry point, expanded\n"
      << "# inter-procedurally to depth " << kExpandDepth << ".  Notation:\n"
      << "#   a ; b          sequence\n"
      << "#   f{ ... }       inlined callee schedule ({...} at depth cap,\n"
      << "#                  @f on recursion)\n"
      << "#   alt[rank|cfg]  branch alternation (rank-divergent vs\n"
      << "#                  rank-invariant condition); '-' = empty branch\n"
      << "#   loop[rank|cfg] loop (rank-divergent vs invariant trip count)\n"
      << "#   try/catch<T>   unwind alternation; p2p: send/recv ops\n"
      << "# Schedule-equal alternations are collapsed; op-free subtrees\n"
      << "# are dropped.  Regenerate: scripts/analyze.sh --update-schedules\n";
  for (const auto& [label, fn_name] : kEntries) {
    out << "\n";
    const FnSched* fs = eng.canon(fn_name);
    if (fs == nullptr) {
      out << "entry " << label << " = " << fn_name
          << " (not found in scanned sources)\n";
      continue;
    }
    out << "entry " << label << " = " << fn_name << " (" << fs->unit->path
        << ":" << fs->fn->line << ")\n";
    const std::string sched =
        render_name(eng, fn_name, kExpandDepth, RenderMode::kDump);
    out << "  " << (sched.empty() ? "(no collective ops reachable)" : sched)
        << "\n";
  }
  return out.str();
}

}  // namespace collcheck
