// Shared dataflow layer: class/field indexing, guard regions, and
// call-graph summaries.  See DESIGN.md §13 for the models and their
// documented false-negative limits.
#include "dataflow.hpp"

#include <algorithm>

#include "tokutil.hpp"

namespace collcheck {

namespace {

// The collective registry, shared with simmpi/obs/collprof via the
// X-macro so the throw-site model can never disagree with the runtime.
const std::unordered_set<std::string>& collective_names() {
  static const std::unordered_set<std::string> kNames = {
#define COLLREP_COLLECTIVE_OBS(Name, str) str,
#define COLLREP_COLLECTIVE_ALIAS(str) str,
#include "obs/collectives.def"
  };
  return kNames;
}

// Method names that block on a dead peer and therefore raise
// RankDeadError (or a RankFailure sibling) in simmpi's failure protocol.
const std::unordered_set<std::string>& throwing_method_names() {
  static const std::unordered_set<std::string> kNames = {
      "barrier", "win_create", "shrink",      "recv_bytes",
      "recv_value", "fence",   "fault_point",
  };
  return kNames;
}

bool is_guard_kind(const std::string& s) {
  return s == "scoped_lock" || s == "lock_guard" || s == "unique_lock" ||
         s == "shared_lock";
}

bool span_mentions(const Toks& toks, std::size_t b, std::size_t e,
                   std::string_view ident) {
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    if (is_ident(toks[i], ident)) return true;
  }
  return false;
}

// The mutex key of a guard argument: the tail of its member chain
// (`ws.locks[...]` -> "locks", `fired_mu_` -> "fired_mu_").  Empty when
// the span does not read like a lockable.
std::string mutex_key(const Toks& toks, std::size_t b, std::size_t e) {
  std::string key;
  for (std::size_t i = b; i < e && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent && !is_cpp_keyword(t.text)) {
      key = t.text;
      continue;
    }
    if (is_punct(t, "[")) {  // subscript: the chain tail came before it
      break;
    }
  }
  return key;
}

// ---------------------------------------------------------------------------
// Class/field index
// ---------------------------------------------------------------------------

void collect_fields(const Toks& toks, ClassInfo& ci) {
  std::size_t i = ci.body_begin;
  while (i < ci.body_end) {
    const Token& t = toks[i];
    if ((is_ident(t, "public") || is_ident(t, "private") ||
         is_ident(t, "protected")) &&
        i + 1 < ci.body_end && is_punct(toks[i + 1], ":")) {
      i += 2;
      continue;
    }
    if (is_ident(t, "using") || is_ident(t, "typedef") ||
        is_ident(t, "friend") || is_ident(t, "static_assert")) {
      i = stmt_end(toks, i, ci.body_end) + 1;
      continue;
    }
    if (is_ident(t, "struct") || is_ident(t, "class") ||
        is_ident(t, "enum") || is_ident(t, "union")) {
      // Nested type definition: skip its body (it is indexed as a class
      // of its own by the outer scan); a trailing declarator on the same
      // statement is a documented miss.
      std::size_t k = i + 1;
      while (k < ci.body_end && !is_punct(toks[k], "{") &&
             !is_punct(toks[k], ";")) {
        ++k;
      }
      if (k < ci.body_end && is_punct(toks[k], "{")) {
        k = match_bracket(toks, k);
      }
      i = stmt_end(toks, k, ci.body_end) + 1;
      continue;
    }
    if (is_ident(t, "template")) {
      if (i + 1 < ci.body_end && is_punct(toks[i + 1], "<")) {
        const std::size_t after = skip_template_args(toks, i + 1);
        i = after == kNpos ? i + 2 : after;
      } else {
        ++i;
      }
      continue;
    }
    if (t.kind == TokKind::kPunct) {
      ++i;
      continue;
    }

    // One member declaration: walk to its end, remembering whether a
    // depth-0 parameter list appeared (=> member function, not a field)
    // and where the declared name sits.
    const std::size_t decl_begin = i;
    bool saw_params = false;
    bool is_function = false;
    std::size_t name_tok = kNpos;
    std::size_t last_ident = kNpos;
    std::size_t k = i;
    while (k < ci.body_end) {
      const Token& u = toks[k];
      if (u.kind == TokKind::kIdent && !is_cpp_keyword(u.text)) {
        last_ident = k;
        ++k;
        continue;
      }
      if (is_punct(u, "<")) {
        const std::size_t after = skip_template_args(toks, k);
        k = after == kNpos ? k + 1 : after;
        continue;
      }
      if (is_punct(u, "(")) {
        if (!saw_params) name_tok = last_ident;
        saw_params = true;
        k = match_bracket(toks, k) + 1;
        continue;
      }
      if (is_punct(u, "[")) {
        if (name_tok == kNpos) name_tok = last_ident;
        k = match_bracket(toks, k) + 1;
        continue;
      }
      if (is_punct(u, "=")) {
        if (name_tok == kNpos) name_tok = last_ident;
        k = stmt_end(toks, k, ci.body_end);  // lands on the ";"
        continue;
      }
      if (is_punct(u, "{")) {
        if (saw_params) {  // inline member function body
          is_function = true;
          k = match_bracket(toks, k) + 1;
          break;
        }
        if (name_tok == kNpos) name_tok = last_ident;  // brace init
        k = match_bracket(toks, k) + 1;
        continue;
      }
      if (is_punct(u, ";")) break;
      ++k;
    }
    const std::size_t decl_end = k;
    if (!is_function && !saw_params) {
      if (name_tok == kNpos) name_tok = last_ident;
      if (name_tok != kNpos && name_tok > decl_begin) {
        FieldInfo f;
        f.name = toks[name_tok].text;
        f.line = toks[name_tok].line;
        FieldKind kind = FieldKind::kPlain;
        bool is_static = false;
        for (std::size_t q = decl_begin; q < name_tok; ++q) {
          if (toks[q].kind != TokKind::kIdent) continue;
          const std::string& s = toks[q].text;
          if (s == "static" || s == "constexpr") is_static = true;
          if (s == "const") kind = FieldKind::kConst;
          if (s.find("mutex") != std::string::npos) {
            kind = FieldKind::kMutex;
          } else if (s.find("atomic") != std::string::npos) {
            kind = FieldKind::kAtomic;
          } else if (s.find("condition_variable") != std::string::npos) {
            kind = FieldKind::kCondVar;
          }
        }
        if (!is_static) {
          f.kind = kind;
          if (kind == FieldKind::kMutex) ci.has_mutex = true;
          ci.fields.push_back(std::move(f));
        }
      }
    }
    if (decl_end < ci.body_end && is_punct(toks[decl_end], ";")) {
      i = decl_end + 1;
    } else {
      i = std::max(decl_end, i + 1);
    }
  }
}

void index_classes(const std::vector<FileUnit>& files,
                   std::vector<ClassInfo>& out) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const Toks& toks = files[fi].lexed.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "class") && !is_ident(toks[i], "struct")) {
        continue;
      }
      if (i > 0 && is_ident(toks[i - 1], "enum")) continue;  // enum class
      std::size_t j = i + 1;
      if (toks[j].kind != TokKind::kIdent || is_cpp_keyword(toks[j].text)) {
        continue;  // anonymous or `struct {` — not indexable by name
      }
      const std::string name = toks[j].text;
      ++j;
      if (j < toks.size() && is_ident(toks[j], "final")) ++j;
      // Definition requires "{" directly or after a base clause ":".
      std::size_t open = kNpos;
      if (j < toks.size() && is_punct(toks[j], "{")) {
        open = j;
      } else if (j < toks.size() && is_punct(toks[j], ":")) {
        for (std::size_t k = j + 1; k < toks.size() && k < j + 48; ++k) {
          if (is_punct(toks[k], "{")) {
            open = k;
            break;
          }
          if (is_punct(toks[k], ";") || is_punct(toks[k], "(") ||
              is_punct(toks[k], ")") || is_punct(toks[k], "=")) {
            break;
          }
        }
      }
      if (open == kNpos) continue;  // forward decl, variable decl, ...
      const std::size_t close = match_bracket(toks, open);
      if (close >= toks.size()) continue;
      ClassInfo ci;
      ci.name = name;
      ci.file_index = fi;
      ci.body_begin = open + 1;
      ci.body_end = close;
      ci.line = toks[i].line;
      collect_fields(toks, ci);
      out.push_back(std::move(ci));
    }
  }
}

// ---------------------------------------------------------------------------
// Guard regions
// ---------------------------------------------------------------------------

struct GuardVarState {
  std::string var;  // guard object name ("" for manual .lock() receivers)
  std::vector<std::string> mutexes;
  bool engaged = true;
};

std::vector<std::string> current_held(
    const std::vector<GuardVarState>& active) {
  std::vector<std::string> out;
  for (const GuardVarState& g : active) {
    if (!g.engaged) continue;
    for (const std::string& m : g.mutexes) out.push_back(m);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void set_held(GuardInfo& gi, std::size_t tok,
              const std::vector<GuardVarState>& active) {
  const std::size_t off = tok - gi.body_begin;
  if (off < gi.held.size()) gi.held[off] = current_held(active);
}

GuardVarState* find_active(std::vector<GuardVarState>& active,
                           const std::string& var) {
  for (auto it = active.rbegin(); it != active.rend(); ++it) {
    if (it->var == var) return &*it;
  }
  return nullptr;
}

// Recursive lexical walk: guards declared in a block die at its end;
// unlock()/lock() toggles on inherited guards are scoped to the block
// (balanced toggles, the common unlock-work-relock idiom, net out).
void walk_guards(const Toks& toks, std::size_t b, std::size_t e,
                 std::vector<GuardVarState> active, GuardInfo& gi) {
  std::size_t i = b;
  while (i < e) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      set_held(gi, i, active);
      const std::size_t close = std::min(match_bracket(toks, i), e);
      walk_guards(toks, i + 1, close, active, gi);
      if (close < e) set_held(gi, close, active);
      i = close + 1;
      continue;
    }
    set_held(gi, i, active);

    // Guard-object declaration:
    //   [std::] scoped_lock|lock_guard|unique_lock|shared_lock [<...>]
    //   var ( mutex [, mutex...] ) ;
    if (t.kind == TokKind::kIdent && is_guard_kind(t.text) &&
        (i == 0 || (!is_punct(toks[i - 1], ".") &&
                    !is_punct(toks[i - 1], "->")))) {
      std::size_t k = i + 1;
      if (k < e && is_punct(toks[k], "<")) {
        const std::size_t after = skip_template_args(toks, k);
        if (after != kNpos) k = after;
      }
      if (k + 1 < e && toks[k].kind == TokKind::kIdent &&
          !is_cpp_keyword(toks[k].text) && is_punct(toks[k + 1], "(")) {
        const std::size_t open = k + 1;
        const std::size_t close = match_bracket(toks, open);
        if (close < e) {
          GuardVarState gs;
          gs.var = toks[k].text;
          for (const auto& [ab, ae] : split_args(toks, open, close)) {
            if (span_mentions(toks, ab, ae, "defer_lock")) {
              gs.engaged = false;
              continue;
            }
            if (span_mentions(toks, ab, ae, "adopt_lock") ||
                span_mentions(toks, ab, ae, "try_to_lock")) {
              continue;
            }
            const std::string key = mutex_key(toks, ab, ae);
            if (!key.empty()) gs.mutexes.push_back(key);
          }
          if (!gs.mutexes.empty()) {
            gi.guard_vars.push_back(gs.var);
            if (gs.engaged) {
              LockAcquire acq;
              acq.mutexes = gs.mutexes;
              acq.held_before = current_held(active);
              acq.line = t.line;
              gi.acquires.push_back(std::move(acq));
            }
            active.push_back(std::move(gs));
          }
          for (std::size_t q = i; q <= close && q < e; ++q) {
            set_held(gi, q, active);
          }
          i = close + 1;
          continue;
        }
      }
    }

    // `X.lock()` / `X.unlock()`: toggles on declared guards, or manual
    // acquisition of a bare mutex.
    if (t.kind == TokKind::kIdent && !is_cpp_keyword(t.text) &&
        i + 3 < e &&
        (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
        (is_ident(toks[i + 2], "lock") || is_ident(toks[i + 2], "unlock")) &&
        is_punct(toks[i + 3], "(")) {
      const bool locking = is_ident(toks[i + 2], "lock");
      GuardVarState* gs = find_active(active, t.text);
      if (gs != nullptr) {
        if (locking && !gs->engaged) {
          LockAcquire acq;
          acq.mutexes = gs->mutexes;
          gs->engaged = false;  // exclude self from held_before
          acq.held_before = current_held(active);
          acq.line = t.line;
          gi.acquires.push_back(std::move(acq));
        }
        gs->engaged = locking;
      } else {
        if (locking) {
          GuardVarState manual;
          manual.var = t.text;
          manual.mutexes = {t.text};
          LockAcquire acq;
          acq.mutexes = manual.mutexes;
          acq.held_before = current_held(active);
          acq.line = t.line;
          gi.acquires.push_back(std::move(acq));
          active.push_back(std::move(manual));
        } else {
          for (auto it = active.begin(); it != active.end(); ++it) {
            if (it->var == t.text) {
              active.erase(it);
              break;
            }
          }
        }
      }
      const std::size_t close = match_bracket(toks, i + 3);
      for (std::size_t q = i; q <= close && q < e; ++q) {
        set_held(gi, q, active);
      }
      i = std::min(close + 1, e);
      continue;
    }
    ++i;
  }
}

// Manual acquire/release pairs held across the body, for CC-EXC-RESOURCE.
// The pair table covers the repo's non-RAII protocols; a guard object is
// never a manual span (RAII releases it on unwind).
void collect_manual_spans(const Toks& toks, const FunctionInfo& fn,
                          GuardInfo& gi) {
  struct Pair {
    const char* acquire;
    const char* release;
    const char* what;
  };
  static constexpr Pair kPairs[] = {
      {"lock", "unlock", "mutex"},
      {"park", "unpark", "parked mailbox"},
      {"begin_update", "commit_update", "partially-committed update"},
  };
  struct Open {
    std::string var;
    const Pair* pair;
    std::size_t manual_index;
  };
  std::vector<Open> open;
  const auto is_guard_var = [&](const std::string& v) {
    return std::find(gi.guard_vars.begin(), gi.guard_vars.end(), v) !=
           gi.guard_vars.end();
  };
  for (std::size_t i = fn.body_begin; i + 3 < fn.body_end; ++i) {
    if (toks[i].kind != TokKind::kIdent || is_cpp_keyword(toks[i].text)) {
      continue;
    }
    if (!is_punct(toks[i + 1], ".") && !is_punct(toks[i + 1], "->")) {
      continue;
    }
    if (toks[i + 2].kind != TokKind::kIdent || !is_punct(toks[i + 3], "(")) {
      continue;
    }
    const std::string& method = toks[i + 2].text;
    for (const Pair& p : kPairs) {
      if (method == p.acquire) {
        if (is_guard_var(toks[i].text)) break;
        ManualSpan span;
        span.what = std::string(p.what) + " '" + toks[i].text + "' (." +
                    p.acquire + "())";
        span.open_tok = i;
        span.close_tok = fn.body_end;
        span.line = toks[i].line;
        open.push_back(Open{toks[i].text, &p, gi.manual.size()});
        gi.manual.push_back(std::move(span));
        break;
      }
      if (method == p.release) {
        for (auto it = open.rbegin(); it != open.rend(); ++it) {
          if (it->var == toks[i].text && it->pair == &p) {
            gi.manual[it->manual_index].close_tok = i;
            open.erase(std::next(it).base());
            break;
          }
        }
        break;
      }
    }
  }
}

GuardInfo compute_guards(const FileUnit& unit, const FunctionInfo& fn) {
  GuardInfo gi;
  gi.body_begin = fn.body_begin;
  gi.held.assign(fn.body_end > fn.body_begin ? fn.body_end - fn.body_begin
                                             : 0,
                 {});
  walk_guards(unit.lexed.tokens, fn.body_begin, fn.body_end, {}, gi);
  collect_manual_spans(unit.lexed.tokens, fn, gi);
  return gi;
}

// ---------------------------------------------------------------------------
// Throw-site and swallow detection
// ---------------------------------------------------------------------------

bool body_throws_rank_error(const Toks& toks, const FunctionInfo& fn) {
  bool has_throw = false;
  bool has_rank_err = false;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& s = toks[i].text;
    if (s == "throw") has_throw = true;
    if (s.find("RankDead") != std::string::npos ||
        s.find("RankKilled") != std::string::npos ||
        s.find("RankFailure") != std::string::npos) {
      has_rank_err = true;
    }
  }
  return has_throw && has_rank_err;
}

// A catch-all handler with no rethrow makes the function a firewall: no
// exception of any kind escapes it, so the can-throw summary stops here.
bool body_swallows_all(const Toks& toks, const FunctionInfo& fn) {
  for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    if (!is_ident(toks[i], "catch") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_bracket(toks, i + 1);
    if (close >= fn.body_end) continue;
    bool catch_all = true;  // catch (...) — three "." puncts
    for (std::size_t k = i + 2; k < close; ++k) {
      if (!is_punct(toks[k], ".")) {
        catch_all = false;
        break;
      }
    }
    if (!catch_all || close == i + 2) continue;
    if (close + 1 >= fn.body_end || !is_punct(toks[close + 1], "{")) {
      continue;
    }
    const std::size_t bend = match_bracket(toks, close + 1);
    bool rethrows = false;
    for (std::size_t k = close + 2; k < bend && k < fn.body_end; ++k) {
      if (is_ident(toks[k], "throw") ||
          is_ident(toks[k], "rethrow_exception")) {
        rethrows = true;
        break;
      }
    }
    if (!rethrows) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// SharedModel
// ---------------------------------------------------------------------------

const FieldInfo* ClassInfo::field(const std::string& n) const {
  for (const FieldInfo& f : fields) {
    if (f.name == n) return &f;
  }
  return nullptr;
}

const std::vector<std::string>& GuardInfo::held_at(std::size_t tok) const {
  static const std::vector<std::string> kEmpty;
  const std::size_t off = tok - body_begin;
  return off < held.size() ? held[off] : kEmpty;
}

const FnFacts* SharedModel::facts(std::size_t file_index,
                                  std::size_t fn_index) const {
  for (const FnFacts& f : fns) {
    if (f.file_index == file_index && f.fn_index == fn_index) return &f;
  }
  return nullptr;
}

bool SharedModel::call_may_throw(const CallSite& c) const {
  if (is_rankdead_throw_site(c)) return true;
  if (c.qualifier == "std") return false;
  const auto it = throws_by_name.find(c.name);
  return it != throws_by_name.end() && it->second;
}

bool is_rankdead_throw_site(const CallSite& c) {
  if (c.method) return throwing_method_names().contains(c.name);
  return collective_names().contains(c.name) &&
         (c.qualifier.empty() || c.qualifier == "simmpi");
}

const std::unordered_set<std::string>& rank_idents() {
  static const std::unordered_set<std::string> kNames = {
      "rank", "rank_", "vrank", "world_rank", "my_rank", "myrank",
      "self_rank"};
  return kNames;
}

SharedModel build_shared_model(const std::vector<FileUnit>& files) {
  SharedModel m;
  m.files = &files;
  index_classes(files, m.classes);

  std::unordered_map<std::string, std::vector<const ClassInfo*>> by_name;
  for (const ClassInfo& c : m.classes) by_name[c.name].push_back(&c);

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileUnit& unit = files[fi];
    for (std::size_t fj = 0; fj < unit.functions.size(); ++fj) {
      const FunctionInfo& fn = unit.functions[fj];
      FnFacts ff;
      ff.file_index = fi;
      ff.fn_index = fj;
      // Owning class: the innermost class span containing the name (inline
      // members), else the `X::` qualifier (out-of-line definitions, where
      // the class usually lives in a sibling header).
      for (const ClassInfo& c : m.classes) {
        if (c.file_index != fi) continue;
        if (fn.name_tok <= c.body_begin || fn.name_tok >= c.body_end) {
          continue;
        }
        if (ff.cls == nullptr || c.body_begin > ff.cls->body_begin) {
          ff.cls = &c;
        }
      }
      if (ff.cls == nullptr && !fn.class_name.empty()) {
        const auto it = by_name.find(fn.class_name);
        if (it != by_name.end()) ff.cls = it->second.front();
      }
      ff.ctor_dtor =
          ff.cls != nullptr && (fn.name == ff.cls->name || fn.is_dtor);
      ff.guards = compute_guards(unit, fn);
      ff.swallows_all = body_swallows_all(unit.lexed.tokens, fn);
      if (!ff.swallows_all) {
        ff.direct_throw = body_throws_rank_error(unit.lexed.tokens, fn);
        if (!ff.direct_throw) {
          for (const CallSite& c : fn.calls) {
            if (is_rankdead_throw_site(c)) {
              ff.direct_throw = true;
              break;
            }
          }
        }
      }
      for (const LockAcquire& a : ff.guards.acquires) {
        ff.locks_acquired.insert(a.mutexes.begin(), a.mutexes.end());
      }
      m.fns.push_back(std::move(ff));
    }
  }

  // --- name-collapsed RankDead reachability (same collapse as bearing) ---
  for (const FnFacts& ff : m.fns) {
    const FunctionInfo& fn = files[ff.file_index].functions[ff.fn_index];
    auto& b = m.throws_by_name[fn.name];
    b = b || ff.direct_throw;
  }
  for (int round = 0; round < 64; ++round) {
    bool changed = false;
    for (const FnFacts& ff : m.fns) {
      const FunctionInfo& fn = files[ff.file_index].functions[ff.fn_index];
      if (ff.swallows_all || m.throws_by_name[fn.name]) continue;
      for (const CallSite& c : fn.calls) {
        if (c.qualifier == "std") continue;
        const auto it = m.throws_by_name.find(c.name);
        if (it != m.throws_by_name.end() && it->second) {
          m.throws_by_name[fn.name] = true;
          changed = true;
          break;
        }
      }
    }
    if (!changed) break;
  }

  // --- caller-context lock propagation (the `*_locked` convention) ---
  // ctx_held(g) = intersection over same-class call sites of
  // (lexically held at the site ∪ ctx_held of the caller).  Starts empty
  // (safe under-approximation) and grows monotonically to a fixpoint.
  std::unordered_map<const ClassInfo*,
                     std::unordered_map<std::string, std::vector<std::size_t>>>
      members;  // class -> fn name -> indices into m.fns
  for (std::size_t i = 0; i < m.fns.size(); ++i) {
    const FnFacts& ff = m.fns[i];
    if (ff.cls == nullptr) continue;
    const FunctionInfo& fn = files[ff.file_index].functions[ff.fn_index];
    members[ff.cls][fn.name].push_back(i);
  }
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    // callee fn index -> list of held-sets observed this round
    std::unordered_map<std::size_t, std::vector<std::vector<std::string>>>
        sites;
    for (const FnFacts& caller : m.fns) {
      if (caller.cls == nullptr) continue;
      const FunctionInfo& fn =
          files[caller.file_index].functions[caller.fn_index];
      const auto cls_it = members.find(caller.cls);
      if (cls_it == members.end()) continue;
      for (const CallSite& c : fn.calls) {
        if (c.method && c.receiver != "this") continue;
        if (!c.method && !c.qualifier.empty()) continue;
        const auto mem_it = cls_it->second.find(c.name);
        if (mem_it == cls_it->second.end()) continue;
        std::vector<std::string> held = caller.guards.held_at(c.tok);
        held.insert(held.end(), caller.ctx_held.begin(),
                    caller.ctx_held.end());
        std::sort(held.begin(), held.end());
        held.erase(std::unique(held.begin(), held.end()), held.end());
        for (const std::size_t callee : mem_it->second) {
          sites[callee].push_back(held);
        }
      }
    }
    for (auto& [callee, held_sets] : sites) {
      std::vector<std::string> inter = held_sets.front();
      for (std::size_t s = 1; s < held_sets.size(); ++s) {
        std::vector<std::string> next;
        std::set_intersection(inter.begin(), inter.end(),
                              held_sets[s].begin(), held_sets[s].end(),
                              std::back_inserter(next));
        inter = std::move(next);
      }
      if (inter != m.fns[callee].ctx_held) {
        m.fns[callee].ctx_held = std::move(inter);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // --- same-class transitive lock acquisition (for lock-order edges) ---
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (FnFacts& caller : m.fns) {
      if (caller.cls == nullptr) continue;
      const FunctionInfo& fn =
          files[caller.file_index].functions[caller.fn_index];
      const auto cls_it = members.find(caller.cls);
      if (cls_it == members.end()) continue;
      for (const CallSite& c : fn.calls) {
        if (c.method && c.receiver != "this") continue;
        if (!c.method && !c.qualifier.empty()) continue;
        const auto mem_it = cls_it->second.find(c.name);
        if (mem_it == cls_it->second.end()) continue;
        for (const std::size_t callee : mem_it->second) {
          for (const std::string& mu : m.fns[callee].locks_acquired) {
            if (caller.locks_acquired.insert(mu).second) changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }

  return m;
}

}  // namespace collcheck
