// CC-RACE-* rules: lockset analysis over the shared class index.
//   CC-RACE-UNGUARDED  field guarded by a mutex at some sites, bare at
//                      others (mixed discipline => a data race window)
//   CC-RACE-OWNER      mutable per-entry state read before the
//                      rank-ownership filter in a condition (the PR-7
//                      FaultSchedule::at_point race shape)
//   CC-RACE-LOCKORDER  two mutexes of one class acquired in both orders
// See DESIGN.md §13 for the lockset model and its limits.
#include <algorithm>
#include <map>
#include <set>

#include "dataflow.hpp"
#include "tokutil.hpp"

namespace collcheck {

namespace {

bool is_assign_op(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  const std::string& s = t.text;
  return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
         s == "|=" || s == "&=" || s == "^=" || s == "++" || s == "--";
}

bool is_mutating_method(const std::string& name) {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back", "clear",  "erase",
      "insert",    "resize",       "assign",   "swap",   "reset",
      "store",     "push",         "pop",      "emplace"};
  return kMutators.contains(name);
}

struct Access {
  const FileUnit* unit = nullptr;
  int line = 0;
  bool write = false;
  bool in_ctor = false;
  std::vector<std::string> held;  // effective lockset (lexical ∪ context)
};

// ---------------------------------------------------------------------------
// CC-RACE-UNGUARDED
// ---------------------------------------------------------------------------

void check_unguarded(const SharedModel& m, std::vector<Finding>& findings) {
  const std::vector<FileUnit>& files = *m.files;
  // (class, field) -> accesses across all member functions.
  std::map<std::pair<const ClassInfo*, std::string>, std::vector<Access>>
      accesses;
  for (const FnFacts& ff : m.fns) {
    if (ff.cls == nullptr || !ff.cls->has_mutex) continue;
    const FileUnit& unit = files[ff.file_index];
    const FunctionInfo& fn = unit.functions[ff.fn_index];
    const Toks& toks = unit.lexed.tokens;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || is_cpp_keyword(t.text)) continue;
      const FieldInfo* field = ff.cls->field(t.text);
      if (field == nullptr || field->kind != FieldKind::kPlain) continue;
      // Only bare `field` / `this->field` accesses bind to this object;
      // `other.field` reads a different instance (documented miss).
      if (i > 0) {
        if (is_punct(toks[i - 1], ".")) continue;
        if (is_punct(toks[i - 1], "->") &&
            !(i >= 2 && is_ident(toks[i - 2], "this"))) {
          continue;
        }
      }
      if (i + 1 < fn.body_end && is_punct(toks[i + 1], "(")) continue;
      bool write = false;
      if (i + 1 < fn.body_end && is_assign_op(toks[i + 1]) &&
          !is_punct(toks[i + 1], "==")) {
        write = true;
      }
      if (i > 0 && (is_punct(toks[i - 1], "++") ||
                    is_punct(toks[i - 1], "--"))) {
        write = true;
      }
      if (!write && i + 2 < fn.body_end &&
          (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
          toks[i + 2].kind == TokKind::kIdent &&
          is_mutating_method(toks[i + 2].text)) {
        write = true;
      }
      // `field[...] = ...` subscripted store.
      if (!write && i + 1 < fn.body_end && is_punct(toks[i + 1], "[")) {
        const std::size_t close = match_bracket(toks, i + 1);
        if (close + 1 < fn.body_end && is_assign_op(toks[close + 1])) {
          write = true;
        }
      }
      Access a;
      a.unit = &unit;
      a.line = t.line;
      a.write = write;
      a.in_ctor = ff.ctor_dtor;
      a.held = ff.guards.held_at(i);
      a.held.insert(a.held.end(), ff.ctx_held.begin(), ff.ctx_held.end());
      std::sort(a.held.begin(), a.held.end());
      a.held.erase(std::unique(a.held.begin(), a.held.end()), a.held.end());
      accesses[{ff.cls, field->name}].push_back(std::move(a));
    }
  }

  for (const auto& [key, accs] : accesses) {
    const auto& [cls, field_name] = key;
    bool write_outside_ctor = false;
    std::map<std::string, int> mutex_freq;
    for (const Access& a : accs) {
      if (a.in_ctor) continue;
      if (a.write) write_outside_ctor = true;
      for (const std::string& mu : a.held) ++mutex_freq[mu];
    }
    if (!write_outside_ctor || mutex_freq.empty()) continue;
    // The field's candidate lock: the mutex held at most accesses.
    std::string majority;
    int best = 0;
    for (const auto& [mu, n] : mutex_freq) {
      if (n > best) {
        best = n;
        majority = mu;
      }
    }
    std::set<std::pair<std::string, int>> reported;
    for (const Access& a : accs) {
      if (a.in_ctor) continue;
      if (std::find(a.held.begin(), a.held.end(), majority) !=
          a.held.end()) {
        continue;
      }
      if (!reported.insert({a.unit->path, a.line}).second) continue;
      findings.push_back(Finding{
          std::string(kRuleRaceUnguarded), a.unit->path, a.line,
          "field '" + field_name + "' of '" + cls->name +
              "' is guarded by '" + majority +
              "' at other sites but is " +
              (a.write ? std::string("written") : std::string("read")) +
              " here without it"});
    }
  }
}

// ---------------------------------------------------------------------------
// CC-RACE-OWNER
// ---------------------------------------------------------------------------

bool is_rankish(const std::string& s) {
  if (rank_idents().contains(s)) return true;
  return s.size() >= 4 && s.rfind("rank") == s.size() - 4;
}

// Split a condition span into top-level || / && operands.
std::vector<std::pair<std::size_t, std::size_t>> split_operands(
    const Toks& toks, std::size_t b, std::size_t e) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  int depth = 0;
  std::size_t begin = b;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
    else if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) --depth;
    else if (depth == 0 && (is_punct(t, "||") || is_punct(t, "&&"))) {
      out.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  out.emplace_back(begin, e);
  return out;
}

// Does the operand compare `<root>.….rank` against a bare rank identifier?
// On success fills `root` with the head of the member chain.
bool is_rank_ownership_filter(const Toks& toks, std::size_t b, std::size_t e,
                              std::string& root) {
  bool has_cmp = false;
  bool has_bare_rank = false;
  std::size_t member_rank = kNpos;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "==") || is_punct(t, "!=")) has_cmp = true;
    if (t.kind != TokKind::kIdent) continue;
    const bool after_member =
        i > b && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    if (is_rankish(t.text)) {
      if (after_member) {
        member_rank = i;
      } else if (i + 1 >= e || !is_punct(toks[i + 1], "(")) {
        has_bare_rank = true;
      }
    }
  }
  if (!has_cmp || !has_bare_rank || member_rank == kNpos) return false;
  // Walk the member chain back to its head.
  std::size_t head = member_rank;
  while (head >= b + 2 &&
         (is_punct(toks[head - 1], ".") || is_punct(toks[head - 1], "->")) &&
         toks[head - 2].kind == TokKind::kIdent) {
    head -= 2;
  }
  root = toks[head].text;
  return true;
}

// Does the operand read a non-rank member of `root`?
int member_read_line(const Toks& toks, std::size_t b, std::size_t e,
                     const std::string& root) {
  for (std::size_t i = b; i + 2 < e; ++i) {
    if (!is_ident(toks[i], root)) continue;
    if (!is_punct(toks[i + 1], ".") && !is_punct(toks[i + 1], "->")) continue;
    // Walk to the chain tail.
    std::size_t k = i + 2;
    std::string tail;
    while (k < e && toks[k].kind == TokKind::kIdent) {
      tail = toks[k].text;
      if (k + 1 < e &&
          (is_punct(toks[k + 1], ".") || is_punct(toks[k + 1], "->"))) {
        k += 2;
        continue;
      }
      break;
    }
    if (!tail.empty() && !is_rankish(tail)) return toks[i].line;
  }
  return 0;
}

void check_owner_filter(const SharedModel& m,
                        std::vector<Finding>& findings) {
  const std::vector<FileUnit>& files = *m.files;
  for (const FnFacts& ff : m.fns) {
    if (ff.cls == nullptr || !ff.cls->has_mutex || ff.ctor_dtor) continue;
    const FileUnit& unit = files[ff.file_index];
    const FunctionInfo& fn = unit.functions[ff.fn_index];
    const Toks& toks = unit.lexed.tokens;
    for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
      if (!is_ident(toks[i], "if") || !is_punct(toks[i + 1], "(")) continue;
      // Under a lock the scan is already exclusive: filter order is a
      // style question there, not a race.
      if (!ff.guards.held_at(i).empty() || !ff.ctx_held.empty()) continue;
      const std::size_t close = match_bracket(toks, i + 1);
      if (close >= fn.body_end) continue;
      const auto operands = split_operands(toks, i + 2, close);
      for (std::size_t oi = 0; oi < operands.size(); ++oi) {
        std::string root;
        if (!is_rank_ownership_filter(toks, operands[oi].first,
                                      operands[oi].second, root)) {
          continue;
        }
        for (std::size_t oj = 0; oj < oi; ++oj) {
          const int line = member_read_line(toks, operands[oj].first,
                                            operands[oj].second, root);
          if (line == 0) continue;
          findings.push_back(Finding{
              std::string(kRuleRaceOwner), unit.path, line,
              "condition reads mutable state of '" + root +
                  "' before the rank-ownership filter on '" + root +
                  ".…rank'; other ranks' threads may be mutating it — put "
                  "the rank filter first"});
        }
        break;  // one filter per condition is enough
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CC-RACE-LOCKORDER
// ---------------------------------------------------------------------------

void check_lock_order(const SharedModel& m, std::vector<Finding>& findings) {
  const std::vector<FileUnit>& files = *m.files;
  struct Edge {
    std::string file;
    int line = 0;
  };
  // Per class: (held, acquired) -> first site.  Scoping edges to one
  // class keeps same-named mutexes of unrelated classes apart.
  std::map<const ClassInfo*, std::map<std::pair<std::string, std::string>,
                                      Edge>>
      edges;

  std::unordered_map<const ClassInfo*,
                     std::unordered_map<std::string, std::vector<std::size_t>>>
      members;
  for (std::size_t i = 0; i < m.fns.size(); ++i) {
    if (m.fns[i].cls == nullptr) continue;
    const FunctionInfo& fn =
        files[m.fns[i].file_index].functions[m.fns[i].fn_index];
    members[m.fns[i].cls][fn.name].push_back(i);
  }

  for (const FnFacts& ff : m.fns) {
    if (ff.cls == nullptr) continue;
    const FileUnit& unit = files[ff.file_index];
    const FunctionInfo& fn = unit.functions[ff.fn_index];
    auto& cls_edges = edges[ff.cls];
    const auto add_edge = [&](const std::string& held,
                              const std::string& acquired, int line) {
      if (held == acquired) return;
      cls_edges.try_emplace({held, acquired}, Edge{unit.path, line});
    };
    for (const LockAcquire& acq : ff.guards.acquires) {
      std::set<std::string> held(acq.held_before.begin(),
                                 acq.held_before.end());
      held.insert(ff.ctx_held.begin(), ff.ctx_held.end());
      for (const std::string& h : held) {
        for (const std::string& n : acq.mutexes) add_edge(h, n, acq.line);
      }
    }
    // Inter-procedural: a call made under a lock reaches the callee's
    // same-class acquisitions.
    const auto cls_it = members.find(ff.cls);
    if (cls_it == members.end()) continue;
    for (const CallSite& c : fn.calls) {
      if (c.method && c.receiver != "this") continue;
      if (!c.method && !c.qualifier.empty()) continue;
      const auto mem_it = cls_it->second.find(c.name);
      if (mem_it == cls_it->second.end()) continue;
      std::set<std::string> held;
      const auto& lex = ff.guards.held_at(c.tok);
      held.insert(lex.begin(), lex.end());
      held.insert(ff.ctx_held.begin(), ff.ctx_held.end());
      if (held.empty()) continue;
      for (const std::size_t callee : mem_it->second) {
        for (const std::string& n : m.fns[callee].locks_acquired) {
          if (held.contains(n)) continue;  // recursive re-entry, not order
          for (const std::string& h : held) add_edge(h, n, c.line);
        }
      }
    }
  }

  for (const auto& [cls, cls_edges] : edges) {
    for (const auto& [key, site] : cls_edges) {
      const auto& [a, b] = key;
      if (a >= b) continue;  // report each 2-cycle once, from (a<b)
      const auto rev = cls_edges.find({b, a});
      if (rev == cls_edges.end()) continue;
      findings.push_back(Finding{
          std::string(kRuleRaceLockOrder), site.file, site.line,
          "lock-order inversion in '" + cls->name + "': '" + a +
              "' is acquired before '" + b + "' here, but '" + b +
              "' before '" + a + "' at " + rev->second.file + ":" +
              std::to_string(rev->second.line)});
      findings.push_back(Finding{
          std::string(kRuleRaceLockOrder), rev->second.file,
          rev->second.line,
          "lock-order inversion in '" + cls->name + "': '" + b +
              "' is acquired before '" + a + "' here, but '" + a +
              "' before '" + b + "' at " + site.file + ":" +
              std::to_string(site.line)});
    }
  }
}

}  // namespace

void run_race_rules(const SharedModel& m, std::vector<Finding>& findings) {
  check_unguarded(m, findings);
  check_owner_filter(m, findings);
  check_lock_order(m, findings);
}

}  // namespace collcheck
