#include "lexer.hpp"

#include <array>
#include <cctype>

namespace collcheck {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Two-character punctuators collcheck cares about keeping whole.  Longer
// ones (<<=, ...) are irrelevant to the rules and may split.
[[nodiscard]] bool two_char_punct(char a, char b) {
  static constexpr std::array<const char*, 19> kOps = {
      "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
      "&&", "||", "+=", "-=", "*=", "/=", "|=", "&=", "^="};
  for (const char* op : kOps) {
    if (op[0] == a && op[1] == b) return true;
  }
  return false;
}

// Scan a `collcheck:allow(ID[,ID...])` marker inside comment text.  The
// shorthand `collcheck: fiber-safe` allows the whole CC-FIBER family on
// that line: the justified "this blocking site runs outside rank context"
// annotation the fiber-readiness audit looks for.
void scan_allow(std::string_view comment, int line, LexedFile& out) {
  if (comment.find("collcheck: fiber-safe") != std::string_view::npos ||
      comment.find("collcheck:fiber-safe") != std::string_view::npos) {
    auto& fiber = out.allows[line];
    fiber.emplace("CC-FIBER-BLOCK");
    fiber.emplace("CC-FIBER-TLS");
  }
  constexpr std::string_view kTag = "collcheck:allow(";
  const auto pos = comment.find(kTag);
  if (pos == std::string_view::npos) return;
  const auto open = pos + kTag.size();
  const auto close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(open, close - open);
  auto& rules = out.allows[line];
  while (!list.empty()) {
    const auto comma = list.find(',');
    std::string_view id = list.substr(0, comma);
    while (!id.empty() && id.front() == ' ') id.remove_prefix(1);
    while (!id.empty() && id.back() == ' ') id.remove_suffix(1);
    if (!id.empty()) rules.emplace(id);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

}  // namespace

bool is_cpp_keyword(std::string_view s) {
  static const std::unordered_set<std::string_view> kKeywords = {
      "alignas",   "alignof",  "asm",        "auto",      "bool",
      "break",     "case",     "catch",      "char",      "class",
      "const",     "consteval","constexpr",  "constinit", "const_cast",
      "continue",  "co_await", "co_return",  "co_yield",  "decltype",
      "default",   "delete",   "do",         "double",    "dynamic_cast",
      "else",      "enum",     "explicit",   "export",    "extern",
      "false",     "float",    "for",        "friend",    "goto",
      "if",        "inline",   "int",        "long",      "mutable",
      "namespace", "new",      "noexcept",   "nullptr",   "operator",
      "private",   "protected","public",     "register",  "reinterpret_cast",
      "requires",  "return",   "short",      "signed",    "sizeof",
      "static",    "static_assert",          "static_cast","struct",
      "switch",    "template", "this",       "thread_local","throw",
      "true",      "try",      "typedef",    "typeid",    "typename",
      "union",     "unsigned", "using",      "virtual",   "void",
      "volatile",  "wchar_t",  "while",      "concept"};
  return kKeywords.contains(s);
}

LexedFile lex(std::string_view src) {
  LexedFile out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen on this line so far

  const auto advance_line = [&] { ++line; at_line_start = true; };

  while (i < n) {
    const char c = src[i];

    if (c == '\n') {
      advance_line();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      scan_allow(src.substr(start, i - start), line, out);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') advance_line();
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      scan_allow(src.substr(start, i - start), start_line, out);
      continue;
    }

    // Preprocessor directive: consume the (possibly continued) line.
    if (c == '#' && at_line_start) {
      const int dir_line = line;
      std::size_t j = i;
      std::string dir;
      while (j < n) {
        if (src[j] == '\\' && j + 1 < n && src[j + 1] == '\n') {
          advance_line();
          j += 2;
          continue;
        }
        if (src[j] == '\n') break;
        dir.push_back(src[j]);
        ++j;
      }
      // Parse `#include "path"` / `#include <path>`.
      std::size_t k = 1;  // past '#'
      while (k < dir.size() && (dir[k] == ' ' || dir[k] == '\t')) ++k;
      if (dir.compare(k, 7, "include") == 0) {
        k += 7;
        while (k < dir.size() && (dir[k] == ' ' || dir[k] == '\t')) ++k;
        if (k < dir.size() && (dir[k] == '"' || dir[k] == '<')) {
          const char closer = dir[k] == '"' ? '"' : '>';
          const bool angled = dir[k] == '<';
          const auto end = dir.find(closer, k + 1);
          if (end != std::string::npos) {
            out.includes.push_back(IncludeDirective{
                dir.substr(k + 1, end - k - 1), dir_line, angled});
          }
        }
      }
      i = j;
      continue;
    }

    at_line_start = false;

    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && delim.size() < 16) {
        delim.push_back(src[j]);
        ++j;
      }
      const std::string closer = ")" + delim + "\"";
      const auto end = src.find(closer, j);
      out.tokens.push_back(Token{TokKind::kString, {}, line});
      const std::size_t stop = end == std::string_view::npos
                                   ? n
                                   : end + closer.size();
      for (std::size_t p = i; p < stop; ++p) {
        if (src[p] == '\n') advance_line();
      }
      at_line_start = false;
      i = stop;
      continue;
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          ++j;  // skip escaped char
        } else if (src[j] == '\n') {
          break;  // unterminated; bail at EOL
        }
        ++j;
      }
      out.tokens.push_back(Token{
          quote == '"' ? TokKind::kString : TokKind::kChar, {}, line});
      i = (j < n && src[j] == quote) ? j + 1 : j;
      continue;
    }

    // Identifier.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back(
          Token{TokKind::kIdent, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // Number (pp-number: digits, letters, dots, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back(
          Token{TokKind::kNumber, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // Punctuation.
    if (i + 1 < n && two_char_punct(c, src[i + 1])) {
      out.tokens.push_back(
          Token{TokKind::kPunct, std::string(src.substr(i, 2)), line});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace collcheck
