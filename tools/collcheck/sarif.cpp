#include "sarif.hpp"

#include <cstdio>
#include <sstream>

namespace collcheck {

namespace {

// JSON string escaping (control chars, quote, backslash).
std::string jesc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings,
                     const std::string& tool_version) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"collcheck\",\n"
     << "          \"version\": \"" << jesc(tool_version) << "\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/collrep/tools/collcheck\",\n"
     << "          \"rules\": [\n";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const RuleInfo& r = catalog[i];
    os << "            {\n"
       << "              \"id\": \"" << r.id << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << jesc(std::string(r.summary)) << "\" },\n"
       << "              \"help\": { \"text\": \""
       << jesc(std::string(r.hint)) << "\" }\n"
       << "            }" << (i + 1 < catalog.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << jesc(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << jesc(f.message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << jesc(f.file) << "\" },\n"
       << "                \"region\": { \"startLine\": " << f.line
       << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace collcheck
