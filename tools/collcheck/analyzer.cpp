#include "analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "dataflow.hpp"
#include "schedule.hpp"
#include "taint.hpp"
#include "tokutil.hpp"

namespace collcheck {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Layer DAG.  A file may include headers only from strictly lower-ranked
// components; equal-rank siblings may not include each other ("cross-layer").
// Harness components (tests, bench, ...) sit at the top and may include
// anything.  The diagram lives in DESIGN.md §10.
// ---------------------------------------------------------------------------
const std::unordered_map<std::string, int>& layer_table() {
  static const std::unordered_map<std::string, int> kRanks = {
      {"kernels", 0}, {"simtime", 0}, {"obs", 0},
      {"hash", 1},    {"ec", 1},
      {"simmpi", 2},
      {"chunk", 3},
      {"core", 4},
      {"fault", 5},   {"check", 5},   {"recover", 5},
      {"ftrt", 6},
      {"apps", 7},
      {"tools", 100}, {"tests", 100}, {"bench", 100}, {"examples", 100},
  };
  return kRanks;
}

// Identifier sets driving the rules.  The collective call-name table comes
// from the shared registry so collcheck, simmpi, obs and collprof can never
// disagree about what counts as a collective.
const std::unordered_set<std::string>& collective_free_names() {
  static const std::unordered_set<std::string> kNames = {
#define COLLREP_COLLECTIVE_OBS(Name, str) str,
#define COLLREP_COLLECTIVE_ALIAS(str) str,
#include "obs/collectives.def"
  };
  return kNames;
}

const std::unordered_set<std::string>& wall_clock_idents() {
  static const std::unordered_set<std::string> kNames = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime"};
  return kNames;
}

const std::unordered_set<std::string>& random_engine_idents() {
  static const std::unordered_set<std::string> kNames = {
      "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};
  return kNames;
}

const std::unordered_set<std::string>& banned_call_names() {
  static const std::unordered_set<std::string> kNames = {
      "strcpy", "strcat", "sprintf", "vsprintf", "gets", "strtok", "tmpnam"};
  return kNames;
}

// ---------------------------------------------------------------------------
// Function extraction (token helpers shared via tokutil.hpp)
// ---------------------------------------------------------------------------

// After the closing ")" of a parameter list, skip declaration qualifiers
// and decide whether a function body follows.  Returns the index of the
// body "{", or npos when this is not a definition.
[[nodiscard]] std::size_t find_body_brace(const Toks& toks,
                                          std::size_t after_params,
                                          bool allow_ctor_init) {
  constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  std::size_t k = after_params;
  const std::size_t n = toks.size();
  int guard = 0;
  while (k < n && ++guard < 64) {
    const Token& t = toks[k];
    if (is_punct(t, "{")) return k;
    if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, ",") ||
        is_punct(t, ")")) {
      return kNpos;  // declaration, = default/delete, or an expression
    }
    if (is_ident(t, "const") || is_ident(t, "override") ||
        is_ident(t, "final") || is_ident(t, "mutable") ||
        is_punct(t, "&") || is_punct(t, "&&")) {
      ++k;
      continue;
    }
    if (is_ident(t, "noexcept")) {
      ++k;
      if (k < n && is_punct(toks[k], "(")) k = match_bracket(toks, k) + 1;
      continue;
    }
    if (is_punct(t, "[") && k + 1 < n && is_punct(toks[k + 1], "[")) {
      // [[attribute]]
      std::size_t close = k;
      while (close < n && !is_punct(toks[close], "]")) ++close;
      k = close + 2;
      continue;
    }
    if (is_punct(t, "->")) {
      // Trailing return type: skip type tokens until "{" or ";".
      ++k;
      while (k < n && !is_punct(toks[k], "{") && !is_punct(toks[k], ";")) {
        if (is_punct(toks[k], "(")) {
          k = match_bracket(toks, k) + 1;
        } else {
          ++k;
        }
      }
      continue;
    }
    if (is_punct(t, ":") && allow_ctor_init) {
      // Constructor initializer list: ident(...) or ident{...} entries.
      ++k;
      while (k < n) {
        while (k < n && (toks[k].kind == TokKind::kIdent ||
                         is_punct(toks[k], "::") || is_punct(toks[k], "<") ||
                         is_punct(toks[k], ">") || is_punct(toks[k], ","))) {
          // "," between template args is rare here; entry commas are
          // handled below after the balanced group.
          if (is_punct(toks[k], ",")) break;
          ++k;
        }
        if (k >= n) return kNpos;
        if (is_punct(toks[k], "(") || is_punct(toks[k], "{")) {
          const bool was_brace = is_punct(toks[k], "{");
          const std::size_t close = match_bracket(toks, k);
          if (close >= n) return kNpos;
          k = close + 1;
          if (k < n && is_punct(toks[k], ",")) {
            ++k;
            continue;  // next initializer
          }
          if (k < n && is_punct(toks[k], "{")) return k;
          if (was_brace && k >= n) return kNpos;
          continue;
        }
        ++k;
      }
      return kNpos;
    }
    // Unrecognized token after the parameter list: not a definition.
    return kNpos;
  }
  return kNpos;
}

void extract_calls(const Toks& toks, FunctionInfo& fn) {
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || is_cpp_keyword(t.text)) continue;
    if (i + 1 >= toks.size()) continue;
    // `name(` directly, or `name<...>(` for explicit template arguments
    // (recv_value<int>(...)).
    std::size_t open = kNpos;
    if (is_punct(toks[i + 1], "(")) {
      open = i + 1;
    } else if (is_punct(toks[i + 1], "<")) {
      const std::size_t past = skip_template_args(toks, i + 1);
      if (past != kNpos && past < toks.size() && is_punct(toks[past], "(")) {
        open = past;
      }
    }
    if (open == kNpos) continue;
    CallSite call;
    call.name = t.text;
    call.line = t.line;
    call.tok = i;
    call.args_open = open;
    if (i > 0) {
      const Token& prev = toks[i - 1];
      if (is_punct(prev, ".") || is_punct(prev, "->")) {
        call.method = true;
        if (i >= 2 && toks[i - 2].kind == TokKind::kIdent) {
          call.receiver = toks[i - 2].text;
        }
      } else if (is_punct(prev, "::") && i >= 2 &&
                 toks[i - 2].kind == TokKind::kIdent) {
        call.qualifier = toks[i - 2].text;
      }
    }
    fn.calls.push_back(std::move(call));
  }
}

void extract_functions(FileUnit& unit) {
  const Toks& toks = unit.lexed.tokens;
  std::size_t i = 0;
  while (i + 1 < toks.size()) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || is_cpp_keyword(t.text) ||
        !is_punct(toks[i + 1], "(")) {
      ++i;
      continue;
    }
    const std::size_t close = match_bracket(toks, i + 1);
    if (close >= toks.size()) {
      ++i;
      continue;
    }
    const std::size_t body = find_body_brace(toks, close + 1,
                                             /*allow_ctor_init=*/true);
    if (body == static_cast<std::size_t>(-1)) {
      ++i;
      continue;
    }
    const std::size_t body_end = match_bracket(toks, body);
    FunctionInfo fn;
    fn.name = t.text;
    fn.line = t.line;
    fn.name_tok = i;
    fn.body_begin = body + 1;
    fn.body_end = std::min(body_end, toks.size());
    // Destructors and out-of-line `X::f` qualification.
    std::size_t q = i;
    if (i >= 1 && is_punct(toks[i - 1], "~")) {
      fn.is_dtor = true;
      fn.class_name = t.text;
      q = i - 1;
    }
    if (q >= 2 && is_punct(toks[q - 1], "::") &&
        toks[q - 2].kind == TokKind::kIdent) {
      fn.class_name = toks[q - 2].text;
    }
    // Explicit noexcept between the parameter list and the body
    // (noexcept(false) opts back out).
    for (std::size_t k = close + 1; k < body; ++k) {
      if (!is_ident(toks[k], "noexcept")) continue;
      fn.is_noexcept = true;
      if (k + 1 < body && is_punct(toks[k + 1], "(")) {
        const std::size_t nc = match_bracket(toks, k + 1);
        for (std::size_t a = k + 2; a < nc; ++a) {
          if (is_ident(toks[a], "false")) fn.is_noexcept = false;
        }
      }
      break;
    }
    extract_calls(toks, fn);
    const std::size_t resume = fn.body_end + 1;
    unit.functions.push_back(std::move(fn));
    i = resume;
  }
}

// ---------------------------------------------------------------------------
// Per-function RMA + collective analysis (rank taint engine in taint.hpp)
// ---------------------------------------------------------------------------

struct FnAnalysis {
  std::vector<Finding> findings;
};

[[nodiscard]] bool is_collective_free_call(const CallSite& c) {
  if (c.method) return false;
  if (!collective_free_names().contains(c.name)) return false;
  return c.qualifier.empty() || c.qualifier == "simmpi";
}

[[nodiscard]] bool is_collective_method(const CallSite& c) {
  return c.method && (c.name == "barrier" || c.name == "win_create");
}

enum class WinState { kUnopened, kOpen, kNoSucceed };

void analyze_function(const FileUnit& unit, FunctionInfo& fn,
                      std::vector<Finding>& findings) {
  const Toks& toks = unit.lexed.tokens;

  // ---- rank taint ----
  TaintCtx ctx;
  ctx.toks = &toks;
  ctx.tainted_at.assign(toks.size(), 0);
  collect_tainted_vars(ctx, fn.body_begin, fn.body_end);
  (void)walk_region(ctx, fn.body_begin, fn.body_end, false, false);

  for (CallSite& c : fn.calls) {
    c.rank_conditional = c.tok < ctx.tainted_at.size() &&
                         ctx.tainted_at[c.tok] != 0;
  }

  // Variables whose value depends on which rank executes (assigned under
  // rank-conditional control flow) feed CC-P2P-TAGDIV; `me = comm.rank()`
  // aliases feed CC-P2P-SELF.
  for (std::size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || is_cpp_keyword(t.text)) continue;
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;
    }
    if (is_punct(toks[i + 1], "=")) {
      if (ctx.tainted_at[i] != 0) fn.divergent_vars.push_back(t.text);
      // `alias = R.rank();` / `R.world_rank();`
      if (i + 7 < fn.body_end && toks[i + 2].kind == TokKind::kIdent &&
          is_punct(toks[i + 3], ".") &&
          (is_ident(toks[i + 4], "rank") ||
           is_ident(toks[i + 4], "world_rank")) &&
          is_punct(toks[i + 5], "(") && is_punct(toks[i + 6], ")") &&
          is_punct(toks[i + 7], ";")) {
        fn.rank_aliases.emplace_back(t.text, toks[i + 2].text);
      }
    }
  }

  // ---- RMA epoch discipline ----
  // Window variables: `X = [comm.]win_create(...)` and `Window X` params
  // or locals.  A put on an Unopened window is flagged for review; a put
  // after fence(kFenceNoSucceed) is an epoch violation.
  std::unordered_map<std::string, WinState> windows;
  // Scan from the top of the file so parameter declarations (which sit
  // just before body_begin) are seen too; the ownership check below keeps
  // other functions' declarations out.
  for (std::size_t i = 0; i + 1 < fn.body_end; ++i) {
    if (i >= toks.size()) break;
    if (!is_ident(toks[i], "Window")) continue;
    if (i + 1 >= fn.body_end) break;
    std::size_t v = i + 1;
    while (v < fn.body_end &&
           (is_punct(toks[v], "&") || is_punct(toks[v], "*"))) {
      ++v;
    }
    if (v < fn.body_end && toks[v].kind == TokKind::kIdent &&
        !is_cpp_keyword(toks[v].text)) {
      // Only consider declarations belonging to this function: the token
      // must sit inside the body or just before it (parameter list).
      if (v >= fn.body_begin && v < fn.body_end) {
        windows.emplace(toks[v].text, WinState::kUnopened);
      } else if (fn.body_begin >= 2 && v < fn.body_begin &&
                 toks[v].line >= toks[fn.body_begin - 1].line - 8 &&
                 toks[v].line <= toks[fn.body_begin].line) {
        windows.emplace(toks[v].text, WinState::kUnopened);
      }
    }
  }

  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "win_create" && i >= 1 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      // Walk back over `receiver . win_create` to `X =`.
      std::size_t back = i - 1;
      if (back >= 1 && toks[back - 1].kind == TokKind::kIdent) --back;
      if (back >= 1 && is_punct(toks[back - 1], "=")) {
        if (back >= 2 && toks[back - 2].kind == TokKind::kIdent) {
          windows[toks[back - 2].text] = WinState::kOpen;
        }
      }
      continue;
    }
    if ((t.text == "fence" || t.text == "put") && i >= 2 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        toks[i - 2].kind == TokKind::kIdent) {
      const std::string& var = toks[i - 2].text;
      const auto it = windows.find(var);
      if (it == windows.end()) continue;  // not a tracked window
      if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
      const std::size_t close = match_bracket(toks, i + 1);
      if (t.text == "put") {
        if (it->second == WinState::kNoSucceed) {
          findings.push_back(Finding{
              std::string(kRuleRmaNoSucceed), unit.path, t.line,
              "put on window '" + var +
                  "' after fence(kFenceNoSucceed) closed its last access "
                  "epoch"});
        } else if (it->second == WinState::kUnopened) {
          findings.push_back(Finding{
              std::string(kRuleRmaNoEpoch), unit.path, t.line,
              "put on window '" + var +
                  "' with no dominating win_create/fence in this function "
                  "(epoch discipline cannot be verified locally)"});
        }
        continue;
      }
      // fence: classify the flags argument.
      bool nosucceed = false;
      bool recognized = true;
      if (close == i + 2) {
        // fence() — reopens the epoch.
      } else if (close == i + 3 && toks[i + 2].kind == TokKind::kNumber &&
                 toks[i + 2].text == "0") {
        // fence(0)
      } else {
        recognized = false;
        for (std::size_t a = i + 2; a < close; ++a) {
          if (toks[a].kind == TokKind::kIdent &&
              toks[a].text.rfind("kFence", 0) == 0) {
            recognized = true;
            if (toks[a].text == "kFenceNoSucceed") nosucceed = true;
          }
        }
      }
      if (!recognized) {
        findings.push_back(Finding{
            std::string(kRuleRmaFlag), unit.path, t.line,
            "fence flags on window '" + var +
                "' are not 0 or a named kFence* constant"});
      }
      it->second = nosucceed ? WinState::kNoSucceed : WinState::kOpen;
    }
  }

  // ---- direct collective marker (for the inter-procedural pass) ----
  for (const CallSite& c : fn.calls) {
    if (is_collective_free_call(c) || is_collective_method(c)) {
      fn.has_direct_collective = true;
      break;
    }
  }
  // fence/free on tracked windows are collective too.
  if (!fn.has_direct_collective) {
    for (const CallSite& c : fn.calls) {
      if (c.method && (c.name == "fence" || c.name == "free") &&
          windows.contains(c.receiver)) {
        fn.has_direct_collective = true;
        break;
      }
    }
  }

  // ---- rank-divergent direct collectives ----
  for (const CallSite& c : fn.calls) {
    if (!c.rank_conditional) continue;
    const bool window_collective =
        c.method && (c.name == "fence" || c.name == "free") &&
        windows.contains(c.receiver);
    if (is_collective_free_call(c) || is_collective_method(c) ||
        window_collective) {
      findings.push_back(Finding{
          std::string(kRuleCollDiv), unit.path, c.line,
          "collective '" + c.name +
              "' is reachable only under rank-dependent control flow; all "
              "ranks must execute the same collective sequence"});
    }
  }
}

// ---------------------------------------------------------------------------
// File-scope token rules (determinism, banned functions)
// ---------------------------------------------------------------------------

void scan_tokens(const FileUnit& unit, std::vector<Finding>& findings) {
  const bool sim_path = layer_rank(unit.component) >= 0 &&
                        layer_rank(unit.component) < 100;
  const Toks& toks = unit.lexed.tokens;
  std::set<std::pair<std::string, int>> seen;  // (rule, line) dedupe
  const auto emit = [&](std::string_view rule, int line, std::string msg) {
    if (!seen.emplace(std::string(rule), line).second) return;
    findings.push_back(Finding{std::string(rule), unit.path, line,
                               std::move(msg)});
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;

    if (sim_path) {
      if (wall_clock_idents().contains(t.text)) {
        emit(kRuleNondetClock, t.line,
             "wall-clock source '" + t.text +
                 "' in a sim path; use the simulated clock "
                 "(Comm::clock/charge) so runs stay deterministic");
        continue;
      }
      if (t.text == "random_device") {
        emit(kRuleNondetRand, t.line,
             "std::random_device is nondeterministic; derive seeds from "
             "config or rank instead");
        continue;
      }
      if ((t.text == "rand" || t.text == "srand") && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "(") &&
          (i == 0 || (!is_punct(toks[i - 1], ".") &&
                      !is_punct(toks[i - 1], "->")))) {
        emit(kRuleNondetRand, t.line,
             "'" + t.text + "' uses hidden global state; use a seeded "
             "<random> engine");
        continue;
      }
      if (random_engine_idents().contains(t.text) && i + 2 < toks.size() &&
          toks[i + 1].kind == TokKind::kIdent &&
          !is_cpp_keyword(toks[i + 1].text) && is_punct(toks[i + 2], ";")) {
        emit(kRuleNondetRand, t.line,
             "'" + toks[i + 1].text + "' is a default-constructed " + t.text +
                 "; seed it deterministically");
        continue;
      }
    }

    if (banned_call_names().contains(t.text) && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") &&
        (i == 0 || (!is_punct(toks[i - 1], ".") &&
                    !is_punct(toks[i - 1], "->")))) {
      emit(kRuleBannedFunc, t.line,
           "'" + t.text + "' is banned (unbounded write / hidden state); "
           "use the std::string/span-based equivalents");
    }
  }
}

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

void check_layering(const FileUnit& unit, std::vector<Finding>& findings) {
  const int from_rank = layer_rank(unit.component);
  if (from_rank >= 100) return;  // harness layers include freely
  if (from_rank < 0) {
    // A src/ subdirectory the DAG does not know.  Surface it so the table
    // cannot silently rot as the tree grows.
    if (unit.path.rfind("src/", 0) == 0 ||
        unit.path.find("/src/") != std::string::npos) {
      findings.push_back(Finding{
          std::string(kRuleLayerUnknown), unit.path, 1,
          "component '" + unit.component +
              "' is not in the collcheck layer table; add it to the DAG in "
              "tools/collcheck/analyzer.cpp and DESIGN.md §10"});
    }
    return;
  }
  for (const IncludeDirective& inc : unit.lexed.includes) {
    if (inc.angled) continue;
    const auto slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string target = inc.path.substr(0, slash);
    const auto it = layer_table().find(target);
    if (it == layer_table().end()) continue;
    const int to_rank = it->second;
    if (target == unit.component) continue;
    if (to_rank > from_rank) {
      findings.push_back(Finding{
          std::string(kRuleLayerUp), unit.path, inc.line,
          "layer '" + unit.component + "' (rank " +
              std::to_string(from_rank) + ") includes upward from '" +
              target + "' (rank " + std::to_string(to_rank) +
              "); move the dependency down or the file up"});
    } else if (to_rank == from_rank) {
      findings.push_back(Finding{
          std::string(kRuleLayerCross), unit.path, inc.line,
          "sibling layers '" + unit.component + "' and '" + target +
              "' (both rank " + std::to_string(from_rank) +
              ") must not include each other"});
    }
  }
}

// ---------------------------------------------------------------------------
// Inter-procedural divergent-collective propagation
// ---------------------------------------------------------------------------

void propagate_bearing(std::vector<FileUnit>& files,
                       std::vector<Finding>& findings) {
  // Name -> is any function with this name collective-bearing?
  std::unordered_map<std::string, bool> bearing;
  for (const FileUnit& u : files) {
    for (const FunctionInfo& f : u.functions) {
      auto& b = bearing[f.name];
      b = b || f.has_direct_collective;
    }
  }
  // Fixpoint over the name-collapsed call graph.
  bool changed = true;
  int rounds = 0;
  while (changed && ++rounds < 64) {
    changed = false;
    for (FileUnit& u : files) {
      for (FunctionInfo& f : u.functions) {
        if (bearing[f.name]) continue;
        for (const CallSite& c : f.calls) {
          const auto it = bearing.find(c.name);
          if (it != bearing.end() && it->second) {
            bearing[f.name] = true;
            changed = true;
            break;
          }
        }
      }
    }
  }
  for (FileUnit& u : files) {
    for (FunctionInfo& f : u.functions) {
      f.collective_bearing = bearing[f.name] || f.has_direct_collective;
      for (const CallSite& c : f.calls) {
        if (!c.rank_conditional) continue;
        if (is_collective_free_call(c) || is_collective_method(c)) {
          continue;  // already reported as CC-COLL-DIV
        }
        const auto it = bearing.find(c.name);
        if (it == bearing.end() || !it->second) continue;
        findings.push_back(Finding{
            std::string(kRuleCollDivCall), u.path, c.line,
            "call to '" + c.name +
                "' (which transitively executes collectives) is reachable "
                "only under rank-dependent control flow"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

void apply_inline_allows(const std::vector<FileUnit>& files,
                         std::vector<Finding>& findings) {
  std::unordered_map<std::string, const FileUnit*> by_path;
  for (const FileUnit& u : files) by_path.emplace(u.path, &u);
  std::erase_if(findings, [&](const Finding& f) {
    const auto it = by_path.find(f.file);
    if (it == by_path.end()) return false;
    const auto& allows = it->second->lexed.allows;
    for (const int line : {f.line, f.line - 1}) {
      const auto a = allows.find(line);
      if (a != allows.end() &&
          (a->second.contains(f.rule) || a->second.contains("*"))) {
        return true;
      }
    }
    return false;
  });
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {kRuleCollDiv,
       "collective or fence reachable only under rank-dependent control flow",
       "hoist the collective out of the rank branch, or make every rank "
       "execute it"},
      {kRuleCollDivCall,
       "call into a collective-bearing function under rank-dependent "
       "control flow",
       "all ranks must reach the callee; restructure so the call is "
       "unconditional"},
      {kRuleRmaNoEpoch,
       "window put with no dominating epoch-opening win_create/fence in the "
       "same function",
       "open the access epoch locally, or document the caller contract and "
       "baseline the site"},
      {kRuleRmaNoSucceed,
       "window put after fence(kFenceNoSucceed) declared the final epoch",
       "drop the kFenceNoSucceed flag on the preceding fence, or move the "
       "put before it"},
      {kRuleRmaFlag,
       "fence flags expression is not 0 or a named kFence* constant",
       "use the named constants from simmpi/check_hook.hpp"},
      {kRuleLayerUp, "include edge points up the layer DAG",
       "move the dependency to a lower layer or the file to a higher one"},
      {kRuleLayerCross, "include edge between same-rank sibling layers",
       "siblings must stay independent; factor shared code into a lower "
       "layer"},
      {kRuleLayerUnknown, "src component missing from the layer table",
       "register the component's rank in tools/collcheck/analyzer.cpp"},
      {kRuleNondetClock, "wall-clock source in a simulation path",
       "use the simulated clock (Comm::clock/charge)"},
      {kRuleNondetRand, "nondeterministic randomness in a simulation path",
       "seed a <random> engine from config or rank"},
      {kRuleBannedFunc, "banned C string/stateful function",
       "use std::string, std::span, or snprintf"},
      {kRuleRaceUnguarded,
       "field guarded by a mutex at other sites is accessed without it",
       "take the class's majority lock here, make the field atomic, or "
       "document single-threaded ownership with an allow comment"},
      {kRuleRaceOwner,
       "mutable state read before the rank-ownership filter in a shared "
       "scan loop",
       "put the rank filter first so other ranks' entries are never "
       "touched (the FaultSchedule::at_point pattern)"},
      {kRuleRaceLockOrder,
       "two mutexes are acquired in opposite orders at different sites",
       "pick one global order (or use std::scoped_lock with both) to rule "
       "out deadlock"},
      {kRuleExcNoexcept,
       "noexcept function (or destructor) can reach a RankDeadError throw "
       "site",
       "drop noexcept, wrap the body in try/catch, or route through a "
       "swallowing release() helper"},
      {kRuleExcResource,
       "manually-acquired resource held across a call that can throw "
       "RankDeadError",
       "use an RAII guard (scoped_lock/unique_lock) or release before the "
       "throwing call"},
      {kRuleExcSwallow,
       "catch block swallows RankDeadError without rethrow or recovery",
       "rethrow, call shrink()/recover_world(), or record the death before "
       "continuing"},
      {kRuleP2pUnmatched,
       "send/recv tag with no static counterpart anywhere in the scanned "
       "sources",
       "add the matching side, or allow-list intentional orphans (leak "
       "tests)"},
      {kRuleP2pSelf, "recv from the caller's own rank",
       "a rank cannot serve its own recv; route self-data through a local "
       "variable instead"},
      {kRuleP2pTagDiv,
       "p2p tag expression diverges across ranks",
       "compute tags from protocol constants and the peer id, never from "
       "rank-conditional state"},
      {kRuleSchedDiv,
       "rank-dependent branching yields different collective schedules",
       "make both branches execute the same collective sequence, or hoist "
       "the collectives out of the rank-dependent region"},
      {kRuleSchedOrder,
       "rank-dependent branches execute the same collectives in different "
       "order",
       "fix one canonical op order; ranks taking different branches will "
       "cross-match collectives otherwise"},
      {kRuleSchedLoop,
       "collective inside a loop whose trip count is rank-dependent",
       "derive the trip count from config or an agreed value (allreduce it "
       "first), never from the local rank"},
      {kRuleSchedUnwind,
       "collective on the RankDeadError unwind path before "
       "shrink/recover_world",
       "the handler must hand control to the failure protocol first; only "
       "shrink()/recover_world() re-align survivor schedules"},
      {kRuleFiberBlock,
       "OS-blocking primitive (cv wait, sleep, lock held across a blocking "
       "op) in a sim component",
       "use sim-aware waits/charged time, or annotate the line with "
       "'// collcheck: fiber-safe' if it runs outside rank context"},
      {kRuleFiberTls,
       "thread_local state in a sim component",
       "key the state by rank id; thread_local aliases across ranks once "
       "they share OS threads (or annotate '// collcheck: fiber-safe')"},
  };
  return kCatalog;
}

int layer_rank(const std::string& component) {
  const auto it = layer_table().find(component);
  return it == layer_table().end() ? -1 : it->second;
}

std::string component_of(const std::string& rel_path) {
  // Last "src/<comp>/" segment wins (fixture corpora embed their own src/
  // trees); otherwise the first path segment when it names a harness layer.
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : rel_path) {
    if (c == '/') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  for (std::size_t i = parts.size(); i-- > 1;) {
    if (parts[i - 1] == "src" && i < parts.size()) {
      return parts[i];
    }
  }
  if (!parts.empty() && layer_table().contains(parts.front())) {
    return parts.front();
  }
  return {};
}

AnalysisResult analyze_sources(
    std::vector<std::pair<std::string, std::string>> sources) {
  AnalysisResult result;
  result.files.reserve(sources.size());
  for (auto& [path, content] : sources) {
    FileUnit unit;
    unit.path = path;
    unit.component = component_of(path);
    unit.lexed = lex(content);
    extract_functions(unit);
    result.files.push_back(std::move(unit));
  }
  for (FileUnit& unit : result.files) {
    check_layering(unit, result.findings);
    scan_tokens(unit, result.findings);
    for (FunctionInfo& fn : unit.functions) {
      analyze_function(unit, fn, result.findings);
    }
  }
  propagate_bearing(result.files, result.findings);
  const SharedModel model = build_shared_model(result.files);
  run_race_rules(model, result.findings);
  run_exc_rules(model, result.findings);
  run_p2p_rules(model, result.findings);
  run_schedule_rules(result.files, result.findings);
  run_fiber_rules(model, result.findings);
  apply_inline_allows(result.files, result.findings);
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule;
                  }),
      result.findings.end());
  return result;
}

AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                             const std::string& repo_root,
                             const AnalyzerOptions& options) {
  const fs::path root = fs::weakly_canonical(repo_root);
  std::vector<std::pair<std::string, std::string>> sources;

  const auto is_source = [](const fs::path& p) {
    const auto ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
  };
  const auto skip_dir = [&](const fs::path& p) {
    const auto name = p.filename().string();
    return name == ".git" || name.rfind("build", 0) == 0 ||
           (!options.include_fixtures && name == "fixtures");
  };
  const auto add_file = [&](const fs::path& p) {
    std::string rel = fs::weakly_canonical(p).lexically_relative(root)
                          .generic_string();
    if (rel.empty() || rel.rfind("..", 0) == 0) {
      rel = p.generic_string();
    }
    // The recursion prune handles fixtures dirs found while walking, but a
    // fixtures dir passed directly as an argument arrives here; filter on
    // the path itself so a production scan can never ingest the corpus.
    if (!options.include_fixtures &&
        ("/" + rel + "/").find("/fixtures/") != std::string::npos) {
      return;
    }
    std::ifstream in(p, std::ios::binary);
    if (!in) return;
    std::ostringstream ss;
    ss << in.rdbuf();
    sources.emplace_back(std::move(rel), ss.str());
  };

  for (const std::string& raw : paths) {
    fs::path p(raw);
    if (p.is_relative()) p = root / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(
          p, fs::directory_options::skip_permission_denied, ec);
      const fs::recursive_directory_iterator end;
      while (it != end) {
        if (it->is_directory(ec) && skip_dir(it->path())) {
          it.disable_recursion_pending();
        } else if (it->is_regular_file(ec) && is_source(it->path())) {
          add_file(it->path());
        }
        it.increment(ec);
        if (ec) break;
      }
    } else if (fs::is_regular_file(p, ec) && is_source(p)) {
      add_file(p);
    }
  }
  std::sort(sources.begin(), sources.end());
  return analyze_sources(std::move(sources));
}

}  // namespace collcheck
