// collcheck CLI.
//
//   collcheck [options] PATH...
//
//   --repo-root DIR      root for relative paths and path normalization
//                        (default: current directory)
//   --baseline FILE      intentional-exception list (default: none)
//   --fail-on-new        print a +/- diff against the baseline and fail on
//                        ANY drift: new findings (+) or stale entries (-)
//   --write-baseline F   write every current finding to F as a baseline
//   --sarif FILE         also write findings as SARIF 2.1.0
//   --dump-schedules F   write the canonical per-entry-point collective
//                        schedules to F ("-" for stdout); byte-stable for
//                        identical input, so CI can diff schedule drift
//   --include-fixtures   scan directories named "fixtures" too
//   --list-rules         print the rule catalog and exit
//
// Exit codes: 0 clean (all findings baselined), 1 unbaselined findings
// (or, with --fail-on-new, stale baseline entries too), 2 usage or I/O
// error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "baseline.hpp"
#include "sarif.hpp"
#include "schedule.hpp"

namespace {

constexpr const char* kVersion = "0.7.0";

int usage(std::ostream& os, int code) {
  os << "usage: collcheck [--repo-root DIR] [--baseline FILE] "
        "[--fail-on-new]\n"
        "                 [--write-baseline FILE] [--sarif FILE]\n"
        "                 [--dump-schedules FILE]\n"
        "                 [--include-fixtures] [--list-rules] PATH...\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo_root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::string schedules_path;
  bool fail_on_new = false;
  collcheck::AnalyzerOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "collcheck: " << flag << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--repo-root") {
      const char* v = need_value("--repo-root");
      if (v == nullptr) return usage(std::cerr, 2);
      repo_root = v;
    } else if (arg == "--baseline") {
      const char* v = need_value("--baseline");
      if (v == nullptr) return usage(std::cerr, 2);
      baseline_path = v;
    } else if (arg == "--fail-on-new") {
      fail_on_new = true;
    } else if (arg == "--write-baseline") {
      const char* v = need_value("--write-baseline");
      if (v == nullptr) return usage(std::cerr, 2);
      write_baseline_path = v;
    } else if (arg == "--sarif") {
      const char* v = need_value("--sarif");
      if (v == nullptr) return usage(std::cerr, 2);
      sarif_path = v;
    } else if (arg == "--dump-schedules") {
      const char* v = need_value("--dump-schedules");
      if (v == nullptr) return usage(std::cerr, 2);
      schedules_path = v;
    } else if (arg == "--include-fixtures") {
      options.include_fixtures = true;
    } else if (arg == "--list-rules") {
      for (const collcheck::RuleInfo& r : collcheck::rule_catalog()) {
        std::cout << r.id << "\n  " << r.summary << "\n  fix: " << r.hint
                  << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "collcheck: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "collcheck: no paths to analyze\n";
    return usage(std::cerr, 2);
  }

  std::vector<std::string> baseline_errors;
  collcheck::Baseline baseline;
  if (!baseline_path.empty()) {
    baseline = collcheck::load_baseline(baseline_path, baseline_errors);
    for (const std::string& e : baseline_errors) {
      std::cerr << "collcheck: " << e << "\n";
    }
    if (!baseline_errors.empty()) return 2;
  }

  const collcheck::AnalysisResult result =
      collcheck::analyze_paths(paths, repo_root, options);

  std::vector<collcheck::Finding> active;
  int suppressed = 0;
  for (const collcheck::Finding& f : result.findings) {
    if (baseline.suppresses(f)) {
      ++suppressed;
    } else {
      active.push_back(f);
    }
  }

  if (fail_on_new) {
    // Diff view: every unbaselined finding is "+", every stale baseline
    // entry is "-".  Any drift fails, so the baseline can never rot.
    for (const collcheck::Finding& f : active) {
      std::cout << "+ " << f.rule << " " << f.file << ":" << f.line << "  "
                << f.message << "\n";
    }
    for (const collcheck::BaselineEntry* e : baseline.unused()) {
      std::cout << "- " << e->rule << " " << e->file << ":"
                << (e->line == 0 ? std::string("*") : std::to_string(e->line))
                << "\n";
    }
  } else {
    for (const collcheck::Finding& f : active) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "collcheck: cannot write baseline to '"
                << write_baseline_path << "'\n";
      return 2;
    }
    out << collcheck::format_baseline(result.findings);
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "collcheck: cannot write SARIF to '" << sarif_path
                << "'\n";
      return 2;
    }
    out << collcheck::to_sarif(active, kVersion);
  }

  if (!schedules_path.empty()) {
    const std::string text = collcheck::dump_schedules(result.files);
    if (schedules_path == "-") {
      std::cout << text;
    } else {
      std::ofstream out(schedules_path, std::ios::binary);
      if (!out) {
        std::cerr << "collcheck: cannot write schedules to '"
                  << schedules_path << "'\n";
        return 2;
      }
      out << text;
    }
  }

  const auto stale = baseline.unused();
  for (const collcheck::BaselineEntry* e : stale) {
    std::cerr << "collcheck: warning: stale baseline entry " << e->rule
              << " " << e->file << ":"
              << (e->line == 0 ? std::string("*") : std::to_string(e->line))
              << " no longer matches any finding; delete it\n";
  }

  std::cerr << "collcheck: " << result.files.size() << " files, "
            << active.size() << " finding" << (active.size() == 1 ? "" : "s")
            << (suppressed != 0
                    ? " (" + std::to_string(suppressed) + " baselined)"
                    : "")
            << "\n";
  if (!active.empty()) return 1;
  if (fail_on_new && !stale.empty()) return 1;
  return 0;
}
