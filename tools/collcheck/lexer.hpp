// collcheck lexer: a comment/string/preprocessor-aware tokenizer for the
// repo's C++ sources.  It is deliberately NOT a full C++ lexer — collcheck
// only needs identifiers, punctuation, and accurate line numbers, with
// string/char literals collapsed to opaque tokens (so a banned function
// name inside a log message never fires) and preprocessor lines captured
// separately (so `#include "..."` edges feed the layering rule without
// polluting the token stream).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace collcheck {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (pp-numbers, good enough)
  kString,  // string literal (including raw strings), text dropped
  kChar,    // character literal, text dropped
  kPunct,   // operators/punctuation; multi-char ops kept together
};

struct Token {
  TokKind kind;
  std::string text;  // empty for kString/kChar
  int line;
};

struct IncludeDirective {
  std::string path;  // the quoted path, verbatim
  int line;
  bool angled;  // <...> system include (ignored by the layering rule)
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  // line -> rule ids allowed by a `collcheck:allow(RULE[,RULE...])` comment
  // on that line.  An allow comment suppresses matching findings on its own
  // line and on the immediately following line (comment-above style).
  std::unordered_map<int, std::unordered_set<std::string>> allows;
};

// Tokenize `source`.  Never throws on malformed input: unterminated
// comments/literals simply end the token stream (collcheck is a linter,
// not a compiler; the real build rejects such files).
[[nodiscard]] LexedFile lex(std::string_view source);

[[nodiscard]] bool is_cpp_keyword(std::string_view s);

}  // namespace collcheck
