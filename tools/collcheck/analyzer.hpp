// collcheck analysis driver: file collection, per-file parsing, the four
// rule families, and inter-procedural propagation.  See DESIGN.md §10.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model.hpp"

namespace collcheck {

struct AnalyzerOptions {
  // Scan files under directories named "fixtures" (off for production
  // scans so the seeded-bug corpus never pollutes a repo run; the test
  // suite turns it on to point collcheck straight at the corpus).
  bool include_fixtures = false;
};

struct AnalysisResult {
  std::vector<FileUnit> files;
  std::vector<Finding> findings;  // sorted by (file, line, rule)
};

// Analyze in-memory sources: (repo-relative path, content) pairs.  The unit
// the test suite drives directly.
[[nodiscard]] AnalysisResult analyze_sources(
    std::vector<std::pair<std::string, std::string>> sources);

// Walk `paths` (files or directories) under `repo_root`, read every
// C++ source, and analyze.  Paths outside repo_root are reported relative
// to the filesystem root they live on.
[[nodiscard]] AnalysisResult analyze_paths(const std::vector<std::string>& paths,
                                           const std::string& repo_root,
                                           const AnalyzerOptions& options);

// Layer rank for a component name; returns -1 when unknown.  Exposed for
// the tests that pin the DAG.
[[nodiscard]] int layer_rank(const std::string& component);

// Component for a repo-relative path ("core" for src/core/dump.cpp,
// "tests" for tests/foo.cpp, "" when unmapped).
[[nodiscard]] std::string component_of(const std::string& rel_path);

}  // namespace collcheck
