// collcheck data model: rules, findings, per-file and per-function
// summaries.  See DESIGN.md §10 for the rule catalog and the layer DAG
// this encodes.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace collcheck {

// Rule identifiers.  Stable strings: they appear in baselines, inline
// allow comments, SARIF output, and the test suite.
inline constexpr std::string_view kRuleCollDiv = "CC-COLL-DIV";
inline constexpr std::string_view kRuleCollDivCall = "CC-COLL-DIV-CALL";
inline constexpr std::string_view kRuleRmaNoEpoch = "CC-RMA-NOEPOCH";
inline constexpr std::string_view kRuleRmaNoSucceed = "CC-RMA-NOSUCCEED";
inline constexpr std::string_view kRuleRmaFlag = "CC-RMA-FLAG";
inline constexpr std::string_view kRuleLayerUp = "CC-LAYER-UP";
inline constexpr std::string_view kRuleLayerCross = "CC-LAYER-CROSS";
inline constexpr std::string_view kRuleLayerUnknown = "CC-LAYER-UNKNOWN";
inline constexpr std::string_view kRuleNondetClock = "CC-NONDET-CLOCK";
inline constexpr std::string_view kRuleNondetRand = "CC-NONDET-RAND";
inline constexpr std::string_view kRuleBannedFunc = "CC-BANNED-FUNC";
// v2 families (DESIGN.md §13): lockset races, failure-unwind safety, and
// static p2p protocol matching.
inline constexpr std::string_view kRuleRaceUnguarded = "CC-RACE-UNGUARDED";
inline constexpr std::string_view kRuleRaceOwner = "CC-RACE-OWNER";
inline constexpr std::string_view kRuleRaceLockOrder = "CC-RACE-LOCKORDER";
inline constexpr std::string_view kRuleExcNoexcept = "CC-EXC-NOEXCEPT";
inline constexpr std::string_view kRuleExcResource = "CC-EXC-RESOURCE";
inline constexpr std::string_view kRuleExcSwallow = "CC-EXC-SWALLOW";
inline constexpr std::string_view kRuleP2pUnmatched = "CC-P2P-UNMATCHED";
inline constexpr std::string_view kRuleP2pSelf = "CC-P2P-SELF";
inline constexpr std::string_view kRuleP2pTagDiv = "CC-P2P-TAGDIV";
// v3 families (DESIGN.md §15): whole-program collective schedules and the
// fiber-readiness audit for the coroutine-scheduler refactor.
inline constexpr std::string_view kRuleSchedDiv = "CC-SCHED-DIV";
inline constexpr std::string_view kRuleSchedOrder = "CC-SCHED-ORDER";
inline constexpr std::string_view kRuleSchedLoop = "CC-SCHED-LOOP";
inline constexpr std::string_view kRuleSchedUnwind = "CC-SCHED-UNWIND";
inline constexpr std::string_view kRuleFiberBlock = "CC-FIBER-BLOCK";
inline constexpr std::string_view kRuleFiberTls = "CC-FIBER-TLS";

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
  std::string_view hint;
};

// The full catalog, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

struct Finding {
  std::string rule;
  std::string file;  // repo-root-relative path
  int line = 0;
  std::string message;
};

// One call site inside a function body.
struct CallSite {
  std::string name;       // callee identifier
  std::string receiver;   // `x` in `x.name(...)`, empty for free calls
  std::string qualifier;  // `ns` in `ns::name(...)`, empty otherwise
  bool method = false;    // preceded by `.` or `->`
  int line = 0;
  bool rank_conditional = false;  // under rank-derived control flow
  std::size_t tok = 0;        // token index of the callee name
  std::size_t args_open = 0;  // token index of the "(" opening the args
};

// Per-function summary extracted by the parser.
struct FunctionInfo {
  std::string name;       // unqualified name (last identifier)
  int line = 0;           // line of the opening parenthesis
  std::size_t body_begin = 0;  // token index of `{`
  std::size_t body_end = 0;    // token index one past matching `}`
  std::size_t name_tok = 0;    // token index of the name
  std::string class_name;  // `X` for out-of-line `X::f` definitions
  bool is_dtor = false;
  bool is_noexcept = false;  // explicit noexcept (dtors are implicit)
  std::vector<CallSite> calls;
  // Filled by the collective analysis:
  bool has_direct_collective = false;
  bool collective_bearing = false;  // transitively reaches a collective
  // Variables assigned under rank-dependent control flow (feeds the
  // CC-P2P-TAGDIV rule) and aliases of `<receiver>.rank()` (feeds
  // CC-P2P-SELF): (alias, receiver) pairs.
  std::vector<std::string> divergent_vars;
  std::vector<std::pair<std::string, std::string>> rank_aliases;
};

struct FileUnit {
  std::string path;       // repo-root-relative, forward slashes
  std::string component;  // layer component ("core", "tests", ...)
  LexedFile lexed;
  std::vector<FunctionInfo> functions;
};

}  // namespace collcheck
