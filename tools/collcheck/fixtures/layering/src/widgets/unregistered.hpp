// Seeded true positive for CC-LAYER-UNKNOWN: a src/ component the layer
// table has never heard of.  Expect CC-LAYER-UNKNOWN at line 1.
#pragma once
struct Widget {};
