// Seeded true positive for CC-LAYER-UP: ec (rank 1) must not reach up into
// core (rank 4).
#pragma once
#include "core/group_parity.hpp"  // expect CC-LAYER-UP line 4
#include "kernels/dispatch.hpp"
