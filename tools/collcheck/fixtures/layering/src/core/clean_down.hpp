// Clean negative for the layering family: core (rank 4) including strictly
// lower layers, plus system headers and a same-component sibling — all
// legal include edges.
#pragma once
#include <vector>

#include "core/dump.hpp"
#include "chunk/store.hpp"
#include "hash/hasher.hpp"
#include "simmpi/comm.hpp"
