// Seeded true positive for CC-LAYER-CROSS: hash and ec sit at the same
// rank and must stay independent of each other.
#pragma once
#include "ec/gf256.hpp"  // expect CC-LAYER-CROSS line 4
