// Seeded true positives for CC-NONDET-RAND: hardware entropy, an unseeded
// engine, and the C global-state generator — all inside a sim component.
#include <cstdlib>
#include <random>

namespace fx {

unsigned entropy_seed() {
  std::random_device rd;  // expect CC-NONDET-RAND line 9
  return rd();
}

int default_engine_draw() {
  std::mt19937 gen;  // expect CC-NONDET-RAND line 14
  return static_cast<int>(gen());
}

int libc_draw() {
  return rand();  // expect CC-NONDET-RAND line 19
}

}  // namespace fx
