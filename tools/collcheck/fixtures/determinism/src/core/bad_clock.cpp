// Seeded true positives for CC-NONDET-CLOCK: wall-clock sources inside a
// simulated component ("src/core" in this fixture tree).
#include <chrono>

namespace fx {

double wall_now() {
  const auto t = std::chrono::system_clock::now();  // expect line 8
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double wall_elapsed() {
  const auto t0 = std::chrono::steady_clock::now();  // expect line 13
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

}  // namespace fx
