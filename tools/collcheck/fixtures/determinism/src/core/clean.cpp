// Clean negative for the determinism family: a deterministically seeded
// engine and snprintf-based formatting inside a sim component.
#include <cstdio>
#include <random>

namespace fx {

int seeded_draw(unsigned seed, int rank) {
  std::mt19937 gen(seed + static_cast<unsigned>(rank));
  return static_cast<int>(gen());
}

void format_id(char* buf, std::size_t n, int id) {
  std::snprintf(buf, n, "%d", id);
}

}  // namespace fx
