// Seeded true positives for CC-BANNED-FUNC.  Unlike the determinism rules,
// banned C functions are flagged in every layer, including harness code
// like this fixture's own (tools-ranked) path.
#include <cstdio>
#include <cstring>

namespace fx {

void copy_name(char* dst, const char* src) {
  strcpy(dst, src);  // expect CC-BANNED-FUNC line 10
}

void format_id(char* buf, int id) {
  sprintf(buf, "%d", id);  // expect CC-BANNED-FUNC line 14
}

}  // namespace fx
