// Clean negative showing the determinism rules' scoping: harness layers
// (tools/tests/bench) may use wall clocks and std::random_device freely —
// only simulated components are held to the determinism bar.
#include <chrono>
#include <random>

namespace fx {

double harness_wall_now() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

unsigned harness_entropy() {
  std::random_device rd;
  return rd();
}

}  // namespace fx
