// Clean negative for the CC-EXC family: the lock held across barrier()
// is RAII (unwind releases it), the RankDeadError handler engages
// recovery and rethrows, and the noexcept accessor cannot reach a throw
// site.
#include <mutex>

namespace fx {

struct Comm;

struct SafeLedger {
  void deposit_all(Comm& comm, int amount) {
    std::scoped_lock lk(mu_);
    balance_ += amount;
    comm.barrier();  // RAII guard: safe across the throw site
  }

  void absorb(Comm& comm) {
    try {
      comm.barrier();
    } catch (const RankDeadError& e) {
      recover();
      throw;  // observed, recovery engaged, and propagated
    }
  }

  long peek() noexcept {
    std::scoped_lock lk(mu_);
    return balance_;
  }

  void recover();

  std::mutex mu_;
  long balance_ = 0;
};

}  // namespace fx
