// Fixture: failure-unwind hazards.  deposit_all() holds mu_ via a manual
// .lock() across barrier() — a rank death there unwinds past the unlock
// and the mutex leaks.  absorb() catches RankDeadError and just counts
// it: the death signal never reaches recovery.
#include <mutex>

namespace fx {

struct Comm;

struct Ledger {
  void deposit_all(Comm& comm, int amount) {
    mu_.lock();  // CC-EXC-RESOURCE
    balance_ += amount;
    comm.barrier();
    mu_.unlock();
  }

  void absorb(Comm& comm) {
    try {
      comm.barrier();
    } catch (const RankDeadError& e) {  // CC-EXC-SWALLOW
      ++drops_;
    }
  }

  std::mutex mu_;
  long balance_ = 0;
  long drops_ = 0;
};

}  // namespace fx
