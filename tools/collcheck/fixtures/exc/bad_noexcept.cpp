// Fixture: noexcept functions that can reach a RankDeadError throw site.
// drain() calls recv_value directly; finish() reaches barrier() through
// settle().  Either path turns an injected rank death into
// std::terminate instead of recovery.
namespace fx {

struct Comm;

void drain(Comm& comm, int tag) noexcept {  // CC-EXC-NOEXCEPT
  (void)comm.recv_value<int>(0, tag);
}

void settle(Comm& comm) {
  comm.barrier();
}

void finish(Comm& comm) noexcept {  // CC-EXC-NOEXCEPT
  settle(comm);
}

}  // namespace fx
