// Seeded true positives for CC-SCHED-ORDER: both arms run the same set
// of collectives, but in a different order, so matched ranks pair up
// mismatched operations at runtime.
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sched_fx {

void swapped_direct(collrep::simmpi::Comm& comm, int value) {
  if (comm.rank() % 2 == 0) {  // expect CC-SCHED-ORDER line 10
    (void)collrep::simmpi::allreduce_sum(comm, value);  // CC-COLL-DIV 11
    comm.barrier();  // expect CC-COLL-DIV line 12
  } else {
    comm.barrier();  // expect CC-COLL-DIV line 14
    (void)collrep::simmpi::allreduce_sum(comm, value);  // CC-COLL-DIV 15
  }
}

void sum_then_sync(collrep::simmpi::Comm& comm, int v) {
  (void)collrep::simmpi::allreduce_sum(comm, v);
  comm.barrier();
}

void sync_then_sum(collrep::simmpi::Comm& comm, int v) {
  comm.barrier();
  (void)collrep::simmpi::allreduce_sum(comm, v);
}

// The swap hides one call level down; the inlined schedule signatures
// still differ even though each arm is a single call.
void swapped_via_calls(collrep::simmpi::Comm& comm, int value) {
  if (comm.rank() == 0) {  // expect CC-SCHED-ORDER line 32
    sum_then_sync(comm, value);  // expect CC-COLL-DIV-CALL line 33
  } else {
    sync_then_sum(comm, value);  // expect CC-COLL-DIV-CALL line 35
  }
}

}  // namespace sched_fx
