// Seeded true positives for CC-SCHED-DIV: rank-dependent branching whose
// arms run different collective schedules.  Not compiled; scanned by
// collcheck_test with --include-fixtures.
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sched_fx {

// Both arms run a collective, but not the same one.  The per-call
// CC-COLL-DIV rule flags each site; the schedule rule flags the branch.
void mismatched_branches(collrep::simmpi::Comm& comm) {
  int value = 3;
  if (comm.rank() == 0) {  // expect CC-SCHED-DIV line 13
    collrep::simmpi::bcast(comm, value, 0);  // expect CC-COLL-DIV line 14
  } else {
    (void)collrep::simmpi::allreduce_sum(comm, value);  // CC-COLL-DIV 16
  }
}

// A rank-guarded early return leaves the tail collective single-sided.
void early_return_skips_tail(collrep::simmpi::Comm& comm) {
  if (comm.rank() != 0) {  // expect CC-SCHED-DIV line 22
    return;
  }
  comm.barrier();  // expect CC-COLL-DIV line 25
}

}  // namespace sched_fx
