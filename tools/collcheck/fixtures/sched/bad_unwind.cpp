// Seeded true positives for CC-SCHED-UNWIND: collective work on the
// RankDeadError unwind path before the failure protocol (shrink /
// recover_world) is engaged.  Other ranks may already be parked in the
// shrink barrier, so these collectives deadlock.
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sched_fx {

void collective_in_handler(collrep::simmpi::Comm& comm) {
  try {
    comm.barrier();
  } catch (const collrep::simmpi::RankDeadError&) {
    comm.barrier();  // expect CC-SCHED-UNWIND line 14
    throw;
  }
}

void rebuild_groups(collrep::simmpi::Comm& comm) {
  comm.barrier();
}

// The unwind collective hides behind a helper call.
void helper_in_handler(collrep::simmpi::Comm& comm) {
  try {
    comm.barrier();
  } catch (const collrep::simmpi::RankDeadError&) {
    rebuild_groups(comm);  // expect CC-SCHED-UNWIND line 28
    throw;
  }
}

}  // namespace sched_fx
