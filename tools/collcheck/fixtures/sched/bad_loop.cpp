// Seeded true positives for CC-SCHED-LOOP: collectives inside loops
// whose trip count depends on the rank, so ranks disagree about how many
// collective rounds run.
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sched_fx {

void rank_bounded_rounds(collrep::simmpi::Comm& comm) {
  for (int i = 0; i < comm.rank(); ++i) {  // expect CC-SCHED-LOOP line 10
    comm.barrier();  // expect CC-COLL-DIV line 11
  }
}

void derived_trip_count(collrep::simmpi::Comm& comm, int value) {
  int steps = comm.rank() * 2;
  while (steps > 0) {  // expect CC-SCHED-LOOP line 17
    (void)collrep::simmpi::allreduce_sum(comm, value);  // CC-COLL-DIV 18
    steps = steps - 1;
  }
}

}  // namespace sched_fx
