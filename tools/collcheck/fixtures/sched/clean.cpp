// Clean negatives for the CC-SCHED family: config-invariant alternation,
// schedule-equal rank branches, invariant loops, order-equal helpers
// behind different names, and a handler that engages recovery before any
// collective.  collcheck must report nothing here.
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sched_fx {

struct Config {
  bool use_sum;
  int rounds;
};

// Branching on config is rank-invariant: every rank takes the same arm.
void config_alternation(collrep::simmpi::Comm& comm, const Config& cfg) {
  int value = 5;
  if (cfg.use_sum) {
    (void)collrep::simmpi::allreduce_sum(comm, value);
  } else {
    collrep::simmpi::bcast(comm, value, 0);
  }
}

// Rank-dependent condition, but both arms run the same schedule.
void divergent_but_equal(collrep::simmpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // collcheck:allow(CC-COLL-DIV) — schedule-equal arms
  } else {
    comm.barrier();  // collcheck:allow(CC-COLL-DIV)
  }
}

void sync_via_alpha(collrep::simmpi::Comm& comm) {
  comm.barrier();
}

void sync_via_beta(collrep::simmpi::Comm& comm) {
  comm.barrier();
}

// Differently-named helpers with identical schedules: the ORDER
// signature inlines callees transparently, so this must stay quiet.
void equal_via_helpers(collrep::simmpi::Comm& comm) {
  if (comm.rank() == 0) {
    sync_via_alpha(comm);  // collcheck:allow(CC-COLL-DIV-CALL)
  } else {
    sync_via_beta(comm);  // collcheck:allow(CC-COLL-DIV-CALL)
  }
}

// Loop bound comes from config: the same number of rounds on every rank.
void invariant_rounds(collrep::simmpi::Comm& comm, const Config& cfg) {
  for (int i = 0; i < cfg.rounds; ++i) {
    comm.barrier();
  }
}

// The handler hands control to the failure protocol before any
// collective: the sanctioned recovery shape.
struct Recovery {
  int recover_world(collrep::simmpi::Comm& comm);
};

void recover_properly(collrep::simmpi::Comm& comm, Recovery& recovery) {
  try {
    comm.barrier();
  } catch (const collrep::simmpi::RankDeadError&) {
    (void)recovery.recover_world(comm);
  }
}

}  // namespace sched_fx
