// Clean negative for the divergent-collective family: unconditional
// collectives, with rank-dependent control flow guarding only point-to-point
// traffic and local work.  collcheck must report nothing here.
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace fx {

void all_ranks_collectives(collrep::simmpi::Comm& comm) {
  int value = comm.rank();
  collrep::simmpi::bcast(comm, value, 0);
  comm.barrier();
  const int total = collrep::simmpi::allreduce_sum(comm, value);
  (void)total;
}

// Rank-guarded p2p is the normal root/leaf pattern and must not fire.
void root_sends_leaves_receive(collrep::simmpi::Comm& comm) {
  if (comm.rank() == 0) {
    for (int r = 1; r < comm.size(); ++r) {
      comm.send_value(r, 9, r * 2);
    }
  } else {
    (void)comm.recv_value<int>(0, 9);
  }
  comm.barrier();
}

// An inline allow suppresses a deliberate divergence.
void acknowledged_divergence(collrep::simmpi::Comm& comm) {
  if (comm.rank() == 0) {  // collcheck:allow(CC-SCHED-DIV)
    comm.barrier();  // collcheck:allow(CC-COLL-DIV)
  }
}

}  // namespace fx
