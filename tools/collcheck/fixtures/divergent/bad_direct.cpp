// Seeded true positives for the divergent-collective rule (CC-COLL-DIV).
// Not compiled; scanned by collcheck_test with --include-fixtures.
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace fx {

// Only rank 0 reaches the bcast: every other rank hangs in whatever
// collective it meets next.
void rank_guarded_bcast(collrep::simmpi::Comm& comm) {
  int value = 41;
  if (comm.rank() == 0) {
    collrep::simmpi::bcast(comm, value, 0);  // expect CC-COLL-DIV line 13
  }
}

// The classic shape: a rank-guarded early return makes everything after it
// rank-divergent, including the barrier.
void early_return_then_barrier(collrep::simmpi::Comm& comm) {
  if (comm.rank() != 0) {
    return;
  }
  comm.barrier();  // expect CC-COLL-DIV line 23
}

}  // namespace fx
