// Seeded true positive for the inter-procedural divergent-collective rule
// (CC-COLL-DIV-CALL): the collective hides one call level down.
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace fx {

void sync_and_publish(collrep::simmpi::Comm& comm, int& value) {
  collrep::simmpi::bcast(comm, value, 0);
}

void leader_only_publish(collrep::simmpi::Comm& comm) {
  int value = 7;
  const int me = comm.rank();
  if (me == 0) {
    sync_and_publish(comm, value);  // expect CC-COLL-DIV-CALL line 16
  }
}

}  // namespace fx
