// Fixture: self-recv and rank-divergent tags.  The recv names the
// caller's own rank as the peer; staged() computes its tag inside a
// rank-conditional branch, so sender and receiver disagree on it.
namespace fx {

struct Comm;

inline constexpr int kSelfTag = 50;
inline constexpr int kLowTag = 51;
inline constexpr int kHighTag = 52;

void echo_self(Comm& comm) {
  comm.send_value(comm.rank(), kSelfTag, 1);
  (void)comm.recv_value<int>(comm.rank(), kSelfTag);  // CC-P2P-SELF
}

void staged(Comm& comm) {
  int tag = 0;
  if (comm.rank() == 0) {
    tag = kLowTag;
  } else {
    tag = kHighTag;
  }
  comm.send_value(1, tag, 5);          // CC-P2P-TAGDIV
  (void)comm.recv_value<int>(0, tag);  // CC-P2P-TAGDIV
}

}  // namespace fx
