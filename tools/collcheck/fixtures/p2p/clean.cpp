// Clean negative for the CC-P2P family: a ring shift whose tags are
// protocol constants (kRingTag) or constant-plus-peer offsets
// (kStreamBase + rank): both sides compute them identically, the peers
// are neighbours, and every tag key has both a send and a recv.
namespace fx {

struct Comm;

inline constexpr int kRingTag = 11;
inline constexpr int kStreamBase = 20;

void ring_shift(Comm& comm) {
  const int me = comm.rank();
  const int next = (me + 1) % comm.world_size();
  const int prev = (me + comm.world_size() - 1) % comm.world_size();
  comm.send_value(next, kRingTag, me);
  (void)comm.recv_value<int>(prev, kRingTag);
  comm.send_value(next, kStreamBase + next, me);
  (void)comm.recv_value<int>(prev, kStreamBase + me);
}

}  // namespace fx
