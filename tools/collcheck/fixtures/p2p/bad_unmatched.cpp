// Fixture: protocol holes.  kOrphanTag is sent but never received
// (message leak); kGhostAck is received but never sent (permanent
// block).  kPairTag is matched and must stay silent.
namespace fx {

struct Comm;

inline constexpr int kOrphanTag = 41;
inline constexpr int kGhostAck = 42;
inline constexpr int kPairTag = 43;

void produce(Comm& comm) {
  comm.send_value(1, kOrphanTag, 7);  // CC-P2P-UNMATCHED
  comm.send_value(1, kPairTag, 8);
}

void consume(Comm& comm) {
  (void)comm.recv_value<int>(0, kPairTag);
  (void)comm.recv_value<int>(0, kGhostAck);  // CC-P2P-UNMATCHED
}

}  // namespace fx
