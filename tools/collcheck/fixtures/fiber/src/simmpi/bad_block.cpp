// Seeded true positives for CC-FIBER-BLOCK: OS-blocking primitives
// inside a sim component (the fixture path places this in src/simmpi,
// which the layering map classifies as simulation code).  Under the
// planned fiber scheduler these park a whole OS thread and starve every
// other rank multiplexed onto it.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fiber_fx {

struct Comm {
  void barrier();
};

struct ParkedWorker {
  std::mutex mu_;
  std::condition_variable cv_;
  bool ready_ = false;

  void park() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return ready_; });  // expect CC-FIBER-BLOCK 24
  }
};

void sleepy_backoff() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // BLOCK 29
}

struct LockedSync {
  std::mutex mu_;
  int epoch_ = 0;

  void locked_collective(Comm& comm) {
    std::lock_guard<std::mutex> g(mu_);
    epoch_ = epoch_ + 1;
    comm.barrier();  // expect CC-FIBER-BLOCK line 39 (mutex held)
  }
};

}  // namespace fiber_fx
