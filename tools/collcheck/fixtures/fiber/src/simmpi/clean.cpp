// Clean negative for the CC-FIBER family: the same primitives carrying
// a justified `collcheck: fiber-safe` annotation (scheduler-internal
// code that only ever runs on host threads, never in rank context),
// plus the non-blocking idioms the audit should leave alone.
#include <atomic>
#include <condition_variable>
#include <mutex>

namespace fiber_fx {

struct SchedulerCore {
  std::mutex mu_;
  std::condition_variable idle_cv_;
  bool work_ = false;

  void host_thread_park() {
    std::unique_lock<std::mutex> lk(mu_);
    // Host-thread parking; replaced wholesale by the fiber port.
    // collcheck: fiber-safe
    idle_cv_.wait(lk, [this] { return work_; });
  }
};

// Host-thread scratch, never touched from rank context.
thread_local int host_scratch = 0;  // collcheck: fiber-safe

std::atomic<int> spin_flag{0};

int poll_flag() {
  return spin_flag.load();
}

}  // namespace fiber_fx
