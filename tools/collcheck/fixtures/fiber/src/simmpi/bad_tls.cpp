// Seeded true positives for CC-FIBER-TLS: thread_local state in a sim
// component aliases across ranks once multiple ranks share one OS
// thread under the fiber scheduler.
namespace fiber_fx {

thread_local int scratch_slot = 0;  // expect CC-FIBER-TLS line 6

int bump_hits() {
  thread_local int hits = 0;  // expect CC-FIBER-TLS line 9
  hits = hits + 1;
  return hits;
}

}  // namespace fiber_fx
