// Fixture: lockset violations.  MetricsHub guards samples_/total_ with
// mu_ in add(), but record_fast() touches both with no lock; lock_ab()
// and lock_ba() acquire a_mu_/b_mu_ in opposite orders (deadlock).
#include <mutex>
#include <vector>

namespace fx {

struct MetricsHub {
  void add(int v) {
    std::scoped_lock lk(mu_);
    samples_.push_back(v);
    ++total_;
  }

  void record_fast(int v) {
    samples_.push_back(v);  // CC-RACE-UNGUARDED
    ++total_;               // CC-RACE-UNGUARDED
  }

  void lock_ab() {
    std::scoped_lock la(a_mu_);
    std::scoped_lock lb(b_mu_);  // CC-RACE-LOCKORDER
    ++linked_;
  }

  void lock_ba() {
    std::scoped_lock lb(b_mu_);
    std::scoped_lock la(a_mu_);  // CC-RACE-LOCKORDER
    --linked_;
  }

  std::mutex mu_;
  std::mutex a_mu_;
  std::mutex b_mu_;
  std::vector<int> samples_;
  long total_ = 0;
  long linked_ = 0;
};

}  // namespace fx
