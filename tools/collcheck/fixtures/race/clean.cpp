// Clean negative for the CC-RACE family: every samples_ access holds
// mu_, the counter is atomic, both multi-lock paths agree on the a->b
// order, and the shared-table scan filters on rank ownership FIRST.
#include <atomic>
#include <mutex>
#include <vector>

namespace fx {

struct Entry {
  int rank = 0;
  bool ready = false;
};

struct CleanHub {
  void add(int v) {
    std::scoped_lock lk(mu_);
    samples_.push_back(v);
    total_.fetch_add(1);
  }

  long drain() {
    std::scoped_lock lk(mu_);
    const long n = static_cast<long>(samples_.size());
    samples_.clear();
    return n;
  }

  void link() {
    std::scoped_lock la(a_mu_);
    std::scoped_lock lb(b_mu_);
    ++linked_;
  }

  void unlink() {
    std::scoped_lock la(a_mu_);
    std::scoped_lock lb(b_mu_);
    --linked_;
  }

  bool poll(int rank) {
    for (auto& e : entries_) {
      if (e.rank != rank || e.ready) continue;  // filter first: safe
      return true;
    }
    return false;
  }

  std::mutex mu_;
  std::mutex a_mu_;
  std::mutex b_mu_;
  std::vector<int> samples_;
  std::atomic<long> total_{0};
  long linked_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace fx
