// Fixture: the pre-fix FaultSchedule::at_point scan order (the PR-7 race).
// `ev.fired` is mutable state written by other ranks' threads under
// fired_mu_; reading it BEFORE the rank-ownership filter races with those
// writers.  The fix was to put the rank filter first.
#include <mutex>
#include <vector>

namespace fx {

struct Slot {
  struct Ev {
    int rank = 0;
    long seq = 0;
  } event;
  bool fired = false;
};

struct Schedule {
  bool at_point(int rank, long seq) {
    for (auto& ev : events_) {
      if (ev.fired || ev.event.rank != rank) continue;  // CC-RACE-OWNER
      if (ev.event.seq == seq) return true;
    }
    return false;
  }

  void fire(int rank) {
    std::scoped_lock lk(fired_mu_);
    for (auto& ev : events_) {
      if (ev.event.rank == rank) ev.fired = true;
    }
  }

  std::mutex fired_mu_;
  std::vector<Slot> events_;
};

}  // namespace fx
