// Clean negative for the RMA family: the canonical epoch lifecycle
// (win_create opens, fence separates epochs, kFenceNoSucceed closes the
// last one, free releases).  Also shows `.put` on a non-window receiver,
// which must not be mistaken for RMA.
#include "simmpi/check_hook.hpp"
#include "simmpi/comm.hpp"

namespace fx {

struct KvStore {
  void put(int key, int value);
};

void canonical_epoch(collrep::simmpi::Comm& comm) {
  auto win = comm.win_create(128);
  const std::vector<std::uint8_t> data(16, 0xAB);
  win.put(1, 0, data);
  win.fence();
  win.put(1, 16, data);
  win.fence(collrep::simmpi::kFenceNoSucceed);
  win.free();
}

void store_put_is_not_rma(KvStore& store) {
  store.put(1, 2);
}

}  // namespace fx
