// Seeded true positive for CC-RMA-NOSUCCEED: a put lands after
// fence(kFenceNoSucceed) already declared the final access epoch.
#include "simmpi/check_hook.hpp"
#include "simmpi/comm.hpp"

namespace fx {

void put_after_final_fence(collrep::simmpi::Comm& comm) {
  auto win = comm.win_create(64);
  const std::vector<std::uint8_t> data(8, 0xEE);
  win.put(1, 0, data);
  win.fence(collrep::simmpi::kFenceNoSucceed);
  win.put(1, 8, data);  // expect CC-RMA-NOSUCCEED line 13
  win.free();
}

}  // namespace fx
