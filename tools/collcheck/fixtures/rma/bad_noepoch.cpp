// Seeded true positives for CC-RMA-NOEPOCH (a put on a window whose epoch
// was never opened in this function) and CC-RMA-FLAG (fence flags that are
// neither 0 nor a named kFence* constant).
#include "simmpi/check_hook.hpp"
#include "simmpi/comm.hpp"

namespace fx {

void put_into_borrowed_window(collrep::simmpi::Comm& comm,
                              collrep::simmpi::Window& win) {
  const std::vector<std::uint8_t> data(4, 0x11);
  (void)comm;
  win.put(0, 0, data);  // expect CC-RMA-NOEPOCH line 13
}

void fence_with_magic_flags(collrep::simmpi::Comm& comm) {
  auto win = comm.win_create(32);
  const std::vector<std::uint8_t> data(4, 0x22);
  win.put(1, 0, data);
  win.fence(3);  // expect CC-RMA-FLAG line 20
  win.free();
}

}  // namespace fx
