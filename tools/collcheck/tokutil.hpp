// collcheck token utilities shared by the analyzer and the dataflow
// layer: bracket matching, statement ends, and a best-effort template
// argument skipper (so `recv_value<T>(...)` reads as a call).
#pragma once

#include <algorithm>
#include <cstddef>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace collcheck {

using Toks = std::vector<Token>;

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

[[nodiscard]] inline bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
[[nodiscard]] inline bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

// Index of the token matching the opener at `open` ("(", "{", "["), or
// toks.size() when unbalanced.
[[nodiscard]] inline std::size_t match_bracket(const Toks& toks,
                                               std::size_t open) {
  const std::string& o = toks[open].text;
  const std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], o)) ++depth;
    else if (is_punct(toks[i], c) && --depth == 0) return i;
  }
  return toks.size();
}

// Statement end: next ";" at bracket depth 0 from `i`.
[[nodiscard]] inline std::size_t stmt_end(const Toks& toks, std::size_t i,
                                          std::size_t limit) {
  int depth = 0;
  for (; i < limit; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) ++depth;
    else if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) --depth;
    else if (is_punct(t, ";") && depth == 0) return i;
  }
  return limit;
}

// Best-effort template-argument skipper.  `lt` indexes a "<" that may open
// a template argument list; returns the index one past the closing ">"
// when the span reads like one (balanced, short, no statement breaks), or
// kNpos when it is more plausibly a comparison.  ">>" closes two levels
// (the C++11 nested-template rule).
[[nodiscard]] inline std::size_t skip_template_args(const Toks& toks,
                                                    std::size_t lt) {
  int depth = 0;
  const std::size_t limit = std::min(toks.size(), lt + 64);
  for (std::size_t i = lt; i < limit; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    const std::string& s = t.text;
    if (s == "<") {
      ++depth;
    } else if (s == ">") {
      if (--depth == 0) return i + 1;
    } else if (s == ">>") {
      depth -= 2;
      if (depth <= 0) return depth == 0 ? i + 1 : kNpos;
    } else if (s == "(" || s == "[") {
      i = match_bracket(toks, i);
      if (i >= toks.size()) return kNpos;
    } else if (s == ";" || s == "{" || s == "}" || s == ")" || s == "]" ||
               s == "&&" || s == "||") {
      return kNpos;  // ran into statement structure: a comparison after all
    }
  }
  return kNpos;
}

// Split the argument list between `open` (the "(") and `close` (its match)
// into top-level comma-separated spans [begin, end).
[[nodiscard]] inline std::vector<std::pair<std::size_t, std::size_t>>
split_args(const Toks& toks, std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (close <= open + 1) return out;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[") ||
        is_punct(t, "<")) {
      ++depth;
    } else if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]") ||
               is_punct(t, ">")) {
      --depth;
    } else if (is_punct(t, ",") && depth == 0) {
      out.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  out.emplace_back(begin, close);
  return out;
}

}  // namespace collcheck
