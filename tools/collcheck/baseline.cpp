#include "baseline.hpp"

#include <fstream>
#include <sstream>

namespace collcheck {

bool Baseline::suppresses(const Finding& f) const {
  for (const BaselineEntry& e : entries) {
    if (e.rule != f.rule || e.file != f.file) continue;
    if (e.line != 0 && e.line != f.line) continue;
    e.used = true;
    return true;
  }
  return false;
}

std::vector<const BaselineEntry*> Baseline::unused() const {
  std::vector<const BaselineEntry*> out;
  for (const BaselineEntry& e : entries) {
    if (!e.used) out.push_back(&e);
  }
  return out;
}

Baseline load_baseline(const std::string& path,
                       std::vector<std::string>& errors) {
  Baseline bl;
  std::ifstream in(path);
  if (!in) return bl;  // missing baseline == empty baseline
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip trailing comment and whitespace.
    std::string note;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) {
      note = raw.substr(hash + 1);
      while (!note.empty() && note.front() == ' ') note.erase(0, 1);
      raw.erase(hash);
    }
    std::istringstream ls(raw);
    std::string rule, loc;
    if (!(ls >> rule)) continue;  // blank or comment-only line
    if (!(ls >> loc)) {
      errors.push_back(path + ":" + std::to_string(lineno) +
                       ": baseline entry is missing its path:line field");
      continue;
    }
    const auto colon = loc.rfind(':');
    if (colon == std::string::npos) {
      errors.push_back(path + ":" + std::to_string(lineno) +
                       ": expected `RULE path:line` (use `path:*` to match "
                       "any line)");
      continue;
    }
    BaselineEntry e;
    e.rule = rule;
    e.file = loc.substr(0, colon);
    const std::string linepart = loc.substr(colon + 1);
    if (linepart == "*") {
      e.line = 0;
    } else {
      try {
        e.line = std::stoi(linepart);
      } catch (...) {
        errors.push_back(path + ":" + std::to_string(lineno) +
                         ": bad line number '" + linepart + "'");
        continue;
      }
      if (e.line <= 0) {
        errors.push_back(path + ":" + std::to_string(lineno) +
                         ": line numbers are 1-based");
        continue;
      }
    }
    e.note = std::move(note);
    bl.entries.push_back(std::move(e));
  }
  return bl;
}

}  // namespace collcheck
