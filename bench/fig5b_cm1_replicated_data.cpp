// Reproduces Figure 5(b): CM1 average and maximal amount of replicated
// data per process for an increasing replication factor (408 processes).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  collrep::bench::print_replicated_data(collrep::bench::App::kCm1,
                                        "Figure 5(b)");
  return 0;
}
