// Ablation A6 (paper §VI future work: rack/topology-aware partner
// selection): the load-aware shuffle alone can place replicas on the same
// node as their origin, which a node loss would take out together; the
// node-aware repair pass removes those placements.  This bench quantifies
// both the violation counts and the load-balance cost of the repair.
#include <cstdio>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  using namespace collrep;
  bench::print_header(
      "Node-aware partner selection: same-node replicas and load balance",
      "paper SVI future work (rack-awareness / topology)");

  const int n = bench::scaled_ranks(408);
  std::printf("%4s | %22s | %22s   (%d ranks, 12/node, CM1)\n", "K",
              "load-aware only", "+ node-aware repair", n);
  std::printf("%4s | %10s %11s | %10s %11s\n", "", "same-node", "max recv",
              "same-node", "max recv");

  for (const int k : {2, 3, 4, 6}) {
    simmpi::RuntimeOptions opts;  // default: 12 ranks per node
    std::vector<chunk::ChunkStore> stores_a;
    std::vector<chunk::ChunkStore> stores_b;
    for (int r = 0; r < n; ++r) {
      stores_a.emplace_back(chunk::StoreMode::kAccounting);
      stores_b.emplace_back(chunk::StoreMode::kAccounting);
    }
    std::uint32_t viol_a = 0;
    std::uint32_t viol_b = 0;
    std::uint64_t recv_a = 0;
    std::uint64_t recv_b = 0;

    simmpi::Runtime rt(n, opts);
    rt.run([&](simmpi::Comm& comm) {
      ftrt::TrackedArena arena(4096);
      apps::MiniCmConfig mc;
      apps::MiniCmModel model(comm, arena, mc);
      (void)model.step(4);
      const auto snapshot = arena.snapshot();

      core::DumpConfig cfg;
      cfg.chunk_bytes = 512;
      cfg.payload_exchange = false;
      core::Dumper plain(comm, stores_a[static_cast<std::size_t>(comm.rank())],
                         cfg);
      const auto sa = plain.dump_output(snapshot, k);
      cfg.node_aware_partners = true;
      core::Dumper aware(comm, stores_b[static_cast<std::size_t>(comm.rank())],
                         cfg);
      const auto sb = aware.dump_output(snapshot, k);

      const auto ga = core::Dumper::collect(comm, sa);
      const auto gb = core::Dumper::collect(comm, sb);
      if (comm.rank() == 0) {
        viol_a = sa.same_node_partners;
        viol_b = sb.same_node_partners;
        recv_a = ga.max_recv_bytes;
        recv_b = gb.max_recv_bytes;
      }
    });
    std::printf("%4d | %10u %11s | %10u %11s\n", k, viol_a,
                bench::human_bytes(static_cast<double>(recv_a)).c_str(),
                viol_b,
                bench::human_bytes(static_cast<double>(recv_b)).c_str());
  }
  std::printf(
      "\nExpected: the repair drives same-node placements to zero with at\n"
      "most a modest increase in maximal receive size (it perturbs the\n"
      "load-aware interleaving locally).\n");
  return 0;
}
