// Reproduces Figure 4(a): HPCCG increase in execution time for replication
// factors 1..6 at 408 processes (paper baseline: 279 s).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  collrep::bench::print_exec_increase(collrep::bench::App::kHpccg,
                                      "Figure 4(a)", 279.0);
  return 0;
}
