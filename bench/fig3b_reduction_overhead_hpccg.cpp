// Reproduces Figure 3(b): overhead of the collective hash value reduction
// for HPCCG with an increasing number of processes (F = 2^17, K in
// {2, 4, 6}), with local-dedup's scale-independent hashing as baseline.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  collrep::bench::print_reduction_overhead(collrep::bench::App::kHpccg,
                                           "Figure 3(b)");
  return 0;
}
