// Reproduces Figure 5(a): CM1 increase in execution time for replication
// factors 1..6 at 408 processes (paper baseline: 382 s).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  collrep::bench::print_exec_increase(collrep::bench::App::kCm1,
                                      "Figure 5(a)", 382.0);
  return 0;
}
