// Reproduces Figure 2: naive vs load-aware partner selection for a
// replication factor of three.  Six processes; the first two send 100
// chunks to each partner, the rest send 10.  The paper reports a maximal
// receive size of 200 for naive selection and 110 after rank shuffling.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/planner.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  using namespace collrep;
  bench::print_header("Naive vs load-aware partner selection (toy example)",
                      "Figure 2");

  constexpr int kN = 6;
  constexpr int kK = 3;
  core::SendMatrix load(kN, kK);
  for (int r = 0; r < kN; ++r) {
    const std::uint64_t chunks = r < 2 ? 100 : 10;
    load.at(r, 1) = chunks;
    load.at(r, 2) = chunks;
  }

  const auto report = [&](const char* name, const std::vector<int>& shuffle) {
    const auto recv = core::receive_chunks_per_rank(load, shuffle);
    std::printf("%-18s shuffle = [", name);
    for (std::size_t i = 0; i < shuffle.size(); ++i) {
      std::printf("%s%d", i ? "," : "", shuffle[i] + 1);  // 1-based as paper
    }
    std::printf("]  received chunks per rank = [");
    for (std::size_t i = 0; i < recv.size(); ++i) {
      std::printf("%s%llu", i ? "," : "",
                  static_cast<unsigned long long>(recv[i]));
    }
    const auto mx = *std::max_element(recv.begin(), recv.end());
    std::printf("]  max = %llu\n", static_cast<unsigned long long>(mx));
    return mx;
  };

  const auto naive_max = report("naive", core::identity_shuffle(kN));
  const auto smart_max = report("load-aware", core::rank_shuffle(load, kK));

  std::printf("\nPaper: max receive drops from 200 to 110.\n");
  std::printf("Measured: %llu -> %llu (%s)\n",
              static_cast<unsigned long long>(naive_max),
              static_cast<unsigned long long>(smart_max),
              (naive_max == 200 && smart_max == 110) ? "exact match"
                                                      : "MISMATCH");
  return (naive_max == 200 && smart_max == 110) ? 0 : 1;
}
