// Ablation G: shrink-and-continue recovery cost (DESIGN.md §12).  Kills
// ranks mid-DUMP_OUTPUT (seeded, deterministic), lets the containment
// protocol surface the deaths, and drives recover::RecoveryService under
// DegradedPolicy::kShrink: the survivors shrink, adopt the orphaned
// datasets, and rebalance replicas to K_eff.  The rebalance is dedup-aware
// — chunks the natural redundancy already keeps at K_eff on the survivors
// ship zero bytes — so the traffic is split into dedup-satisfied vs
// re-replicated and compared against the brute-force alternative, a full
// re-dump of every survivor image.
//
//   --seed=<n>      victim-selection seed (default 1); scripts/fault_sweep.sh
//                   checks that the same seed reproduces bit-identical output
//   --metrics=<f>   MetricsRegistry JSON incl. recover.* (see bench_util.hpp)
//   --profile=<f>   collprof critical-path profile JSON
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/schedule.hpp"
#include "recover/service.hpp"

namespace {

using namespace collrep;

constexpr int kK = 3;

// One injected rank death: world rank `rank` dies when it reaches
// dump.exchange.mid under checkpoint epoch `epoch`.
struct Kill {
  int rank = 0;
  std::uint64_t epoch = 0;
};

// Seeded distinct victim pick (same splitmix64 stream family as the fault
// schedule's helper, which cannot be reused here because the endurance
// scenario pins each victim to a different epoch).
std::vector<int> pick_victims(std::uint64_t seed, int nranks, int count) {
  std::uint64_t state = seed;
  const auto next = [&state]() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  std::vector<int> victims;
  while (static_cast<int>(victims.size()) < count) {
    const int v = static_cast<int>(next() % static_cast<std::uint64_t>(nranks));
    bool taken = false;
    for (const int u : victims) taken = taken || u == v;
    if (!taken) victims.push_back(v);
  }
  return victims;
}

struct Scenario {
  std::vector<int> victims;
  std::vector<recover::RecoveryStats> recoveries;  // one per shrink
  int world_after = 0;
  std::uint64_t checkpoints = 0;
  double completion_s = 0.0;
  core::GlobalDumpStats last_dump;  // final (healthy) checkpoint
};

// HPCCG run with periodic checkpoints; epochs advance 1,2,... and every
// recovery retry burns one, so a kill at epoch 2 hits the second
// checkpoint's first attempt and the retry lands on epoch 3.
Scenario run_scenario(int nranks, const std::vector<Kill>& kills) {
  Scenario out;
  std::vector<chunk::ChunkStore> stores;
  stores.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    stores.emplace_back(chunk::StoreMode::kAccounting);
  }
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);

  fault::FaultSchedule sched;
  for (const auto& k : kills) {
    fault::FaultEvent ev;
    ev.point = "dump.exchange.mid";
    ev.rank = k.rank;
    ev.epoch = k.epoch;
    ev.action = fault::FaultAction::kKillRank;
    sched.add(ev);
    out.victims.push_back(k.rank);
  }
  sched.arm(ptrs);
  sched.attach(bench::telemetry());

  recover::RecoveryConfig rcfg;
  rcfg.replication = kK;
  recover::RecoveryService svc(ptrs, rcfg);

  simmpi::RuntimeOptions opts;
  opts.telemetry = bench::telemetry();
  opts.faults = &sched;
  opts.contain_failures = true;
  simmpi::Runtime rt(nranks, opts);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(512);

    core::DumpConfig dump_cfg;
    dump_cfg.chunk_bytes = 512;
    dump_cfg.payload_exchange = false;  // accounting-scale run
    ftrt::CheckpointConfig ckpt_cfg;
    ckpt_cfg.dump = dump_cfg;
    ckpt_cfg.replication_factor = kK;
    ckpt_cfg.on_degraded = ftrt::DegradedPolicy::kShrink;
    ckpt_cfg.recovery = &svc;
    ftrt::CheckpointRuntime ckpt(
        comm, stores[static_cast<std::size_t>(comm.rank())], arena, ckpt_cfg);

    apps::HpccgConfig hcfg;
    hcfg.nx = hcfg.ny = hcfg.nz = 12;
    apps::HpccgSolver hpccg(comm, arena, hcfg);

    // Identical on every survivor: recoveries are collective and their
    // global stats agree rank-to-rank.
    std::vector<recover::RecoveryStats> recoveries;
    core::DumpStats last{};
    for (int iter = 1; iter <= 45; ++iter) {
      (void)hpccg.iterate(1);
      if (iter % 15 != 0) continue;
      last = ckpt.checkpoint_now();
      const auto& rec = ckpt.last_recovery();
      if (rec.has_value() &&
          (recoveries.empty() ||
           recoveries.back().shrink_epoch != rec->shrink_epoch)) {
        recoveries.push_back(*rec);
      }
    }
    comm.barrier();
    const auto g = core::Dumper::collect(comm, last);
    if (comm.rank() == 0) {
      out.recoveries = recoveries;
      out.world_after = comm.size();
      out.checkpoints = ckpt.checkpoints_taken();
      out.completion_s = comm.clock().now();
      out.last_dump = g;
    }
  });
  return out;
}

std::string victims_string(const std::vector<int>& victims) {
  if (victims.empty()) return "-";
  std::string s;
  for (int v : victims) {
    if (!s.empty()) s += ",";
    s += std::to_string(v);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry(argc, argv);
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }

  const int nranks = bench::quick_mode() ? 8 : 64;
  bench::print_header(
      "Ablation G: shrink-and-continue recovery vs full re-dump",
      "DESIGN.md section 12: surviving rank death inside DUMP_OUTPUT");
  std::printf("ranks=%d  K=%d  chunk=512 B  HPCCG 12^3  seed=%llu\n", nranks,
              kK, static_cast<unsigned long long>(seed));

  // Brute-force alternative: abandon the run and re-dump every surviving
  // image from scratch — its traffic is the healthy dump of the same data.
  const Scenario healthy = run_scenario(nranks, {});
  const double redump_bytes =
      static_cast<double>(healthy.last_dump.total_sent_bytes);

  // Sweep the number of ranks killed inside one dump (all pinned to epoch
  // 2, the second checkpoint's first attempt; K-1 keeps every chunk
  // recoverable — at K deaths fully-private chunks can go extinct, which
  // recovery reports loudly via ChunkLostError, see tests/recover_test).
  std::printf("\n%5s  %-8s  %5s  %6s  %12s  %12s  %10s  %7s\n", "kills",
              "victims", "world", "chunks", "dedup-sat", "resent",
              "recover t", "vs dump");
  for (int fails = 0; fails < kK; ++fails) {
    Scenario s;
    if (fails == 0) {
      s = healthy;
    } else {
      std::vector<Kill> kills;
      for (const int v : pick_victims(seed, nranks, fails)) {
        kills.push_back(Kill{v, 2});
      }
      s = run_scenario(nranks, kills);
    }
    recover::RecoveryStats rec;  // zeros when no recovery ran
    if (!s.recoveries.empty()) rec = s.recoveries.back();
    const double pct =
        redump_bytes > 0.0
            ? 100.0 * static_cast<double>(rec.rereplicated_bytes) /
                  redump_bytes
            : 0.0;
    std::printf("%5d  %-8s  %5d  %6llu  %12s  %12s  %8.4fs  %6.1f%%\n", fails,
                victims_string(s.victims).c_str(), s.world_after,
                static_cast<unsigned long long>(rec.chunks_total),
                bench::human_bytes(
                    static_cast<double>(rec.dedup_satisfied_bytes))
                    .c_str(),
                bench::human_bytes(static_cast<double>(rec.rereplicated_bytes))
                    .c_str(),
                rec.total_time_s, pct);
  }

  // Endurance: one death per dump across successive checkpoints — each
  // shrink must leave a world the next one can shrink again.
  const auto endurance_victims = pick_victims(seed ^ 0x5D1F, nranks, 2);
  std::vector<Kill> rounds;
  rounds.push_back(Kill{endurance_victims[0], 2});  // 2nd ckpt, retry -> 3
  rounds.push_back(Kill{endurance_victims[1], 4});  // 3rd ckpt, retry -> 5
  const Scenario e = run_scenario(nranks, rounds);
  std::printf("\nendurance: kills at epochs 2 and 4 (victims %s)\n",
              victims_string(e.victims).c_str());
  std::printf("%5s  %6s  %5s  %12s  %12s  %10s\n", "round", "deaths", "world",
              "orphan B", "resent", "recover t");
  for (std::size_t i = 0; i < e.recoveries.size(); ++i) {
    const auto& r = e.recoveries[i];
    std::printf("%5zu  %6d  %5d  %12s  %12s  %8.4fs\n", i + 1, r.deaths,
                r.world_size_after,
                bench::human_bytes(static_cast<double>(r.orphan_bytes_total))
                    .c_str(),
                bench::human_bytes(static_cast<double>(r.rereplicated_bytes))
                    .c_str(),
                r.total_time_s);
  }
  std::printf(
      "endurance run: %llu checkpoints, final world %d, completion %.4fs\n",
      static_cast<unsigned long long>(e.checkpoints), e.world_after,
      e.completion_s);

  std::printf(
      "\nfull re-dump ships %s; the shrink rebalance ships only the replica\n"
      "shortfall on the survivors — naturally duplicated chunks already at\n"
      "K_eff cost zero bytes and are reported under dedup-sat.\n",
      bench::human_bytes(redump_bytes).c_str());
  return 0;
}
