// Shared infrastructure for the paper-reproduction benches.
//
// Every bench runs the *real* pipeline (real mini-app memory images, real
// fingerprinting, real collective reduction and window exchange) at
// laptop-scaled per-rank sizes, with byte-accounting stores and
// metadata-only exchange so 408-rank configurations fit in RAM.  Reported
// times are deterministic simulated seconds from the simtime cost model
// (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/hpccg.hpp"
#include "apps/minicm.hpp"
#include "core/collrep.hpp"
#include "ftrt/checkpoint.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"

namespace collrep::bench {

// -- telemetry ----------------------------------------------------------------
//
// Every fig/ablation binary accepts
//   --trace=<file>     Chrome trace-event JSON (load in Perfetto)
//   --metrics=<file>   MetricsRegistry JSON (counters/gauges/histograms)
//   --profile=<file>   collprof critical-path profile JSON (built in-process
//                      from the same events; see src/obs/profile.hpp).  The
//                      flag also raises the per-rank trace-ring capacity so
//                      the happens-before DAG stays complete.
// Telemetry stays off (null pointer, zero recording cost) unless at least
// one flag is present.  Construct one TelemetryScope at the top of main();
// the files are written when it leaves scope.

inline std::unique_ptr<obs::Telemetry>& telemetry_slot() {
  static std::unique_ptr<obs::Telemetry> slot;
  return slot;
}

// nullptr when telemetry is disabled; handed to RuntimeOptions::telemetry.
inline obs::Telemetry* telemetry() { return telemetry_slot().get(); }

class TelemetryScope {
 public:
  TelemetryScope(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--trace=", 8) == 0) {
        trace_path_ = arg + 8;
      } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
        metrics_path_ = arg + 10;
      } else if (std::strncmp(arg, "--profile=", 10) == 0) {
        profile_path_ = arg + 10;
      }
    }
    if (!trace_path_.empty() || !metrics_path_.empty() ||
        !profile_path_.empty()) {
      obs::TelemetryConfig cfg;
      if (!profile_path_.empty()) {
        // Profiling needs every event of every dump: 8x the default ring.
        cfg.trace_capacity = std::size_t{1} << 17;
      }
      telemetry_slot() = std::make_unique<obs::Telemetry>(cfg);
    }
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  ~TelemetryScope() {
    obs::Telemetry* t = telemetry();
    if (t != nullptr) {
      if (!metrics_path_.empty()) {
        t->publish_rollup();
        write_file(metrics_path_, t->metrics().to_json());
      }
      if (!trace_path_.empty()) write_file(trace_path_, t->trace_json());
      if (!profile_path_.empty()) {
        const obs::Profile profile =
            obs::build_profile(obs::collect_events(*t), t->dropped_events());
        if (profile.dropped_events != 0) {
          std::fprintf(stderr,
                       "telemetry: warning: %llu trace events dropped; the "
                       "profile's happens-before DAG is incomplete\n",
                       static_cast<unsigned long long>(
                           profile.dropped_events));
        }
        write_file(profile_path_, obs::profile_json(profile));
      }
    }
    telemetry_slot().reset();
  }

 private:
  static void write_file(const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "telemetry: cannot open %s for writing\n",
                   path.c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "telemetry: wrote %s (%zu bytes)\n", path.c_str(),
                 body.size());
  }

  std::string trace_path_;
  std::string metrics_path_;
  std::string profile_path_;
};

enum class App { kHpccg, kCm1 };

inline const char* app_name(App app) {
  return app == App::kHpccg ? "HPCCG" : "CM1";
}

struct BenchSpec {
  App app = App::kHpccg;
  int nranks = 408;
  int k = 3;
  core::Strategy strategy = core::Strategy::kCollDedup;
  bool rank_shuffle = true;
  std::uint32_t threshold_f = 1u << 17;
  // Scaled with the sub-problem: the paper chunks 1.5 GB/rank images into
  // 4 KB pages (page ~ 0.13x of an interior stencil run at 150^3); at the
  // laptop-scale 12^3 sub-blocks the same ratio gives ~512 B chunks.
  std::size_t chunk_bytes = 512;

  // Laptop-scale sub-problem sizes (paper: HPCCG 150^3 ~ 1.5 GB/rank,
  // CM1 200x200 ~ 800 MB/rank).
  int hpccg_n = 12;
  int cm_nx = 24;
  int cm_ny = 24;
  int cm_nz = 8;

  // Application schedule.  HPCCG (paper): 127 iterations, checkpoint at
  // 100.  CM1 (paper): 70 steps, checkpoint every 30.
  int iterations = 127;
  int checkpoint_at = 100;     // HPCCG-style single checkpoint
  int checkpoint_every = 0;    // CM1-style periodic (overrides _at if > 0)
};

struct BenchResult {
  double completion_s = 0.0;       // simulated app time incl. checkpoints
  double baseline_s = 0.0;         // same run minus all checkpoint time
  double checkpoint_s = 0.0;       // total DUMP_OUTPUT time
  sim::PhaseBreakdown phases;      // max-over-ranks, summed over checkpoints
  core::GlobalDumpStats global;    // from the last checkpoint
  std::uint64_t per_rank_bytes = 0;
  int checkpoints = 0;
};

// Scales the default rank counts down when COLLREP_QUICK is set, so the
// whole bench suite can be smoke-run in seconds.
inline bool quick_mode() {
  const char* env = std::getenv("COLLREP_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline int scaled_ranks(int n) {
  if (!quick_mode()) return n;
  return std::max(4, n / 16);
}

inline BenchResult run_app_bench(const BenchSpec& spec) {
  BenchResult result;
  std::vector<chunk::ChunkStore> stores;
  stores.reserve(static_cast<std::size_t>(spec.nranks));
  for (int r = 0; r < spec.nranks; ++r) {
    stores.emplace_back(chunk::StoreMode::kAccounting);
  }

  simmpi::RuntimeOptions opts;  // Shamrock-like cluster model
  opts.telemetry = telemetry();
  simmpi::Runtime rt(spec.nranks, opts);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(spec.chunk_bytes);

    core::DumpConfig dump_cfg;
    dump_cfg.strategy = spec.strategy;
    dump_cfg.chunk_bytes = spec.chunk_bytes;
    dump_cfg.threshold_f = spec.threshold_f;
    dump_cfg.rank_shuffle = spec.rank_shuffle;
    dump_cfg.payload_exchange = false;  // accounting-scale runs

    ftrt::CheckpointConfig ckpt_cfg;
    ckpt_cfg.dump = dump_cfg;
    ckpt_cfg.replication_factor = spec.k;

    ftrt::CheckpointRuntime ckpt(
        comm, stores[static_cast<std::size_t>(comm.rank())], arena, ckpt_cfg);

    std::optional<apps::HpccgSolver> hpccg;
    std::optional<apps::MiniCmModel> cm;
    if (spec.app == App::kHpccg) {
      apps::HpccgConfig cfg;
      cfg.nx = cfg.ny = cfg.nz = spec.hpccg_n;
      hpccg.emplace(comm, arena, cfg);
    } else {
      apps::MiniCmConfig cfg;
      cfg.nx = spec.cm_nx;
      cfg.ny = spec.cm_ny;
      cfg.nz = spec.cm_nz;
      cm.emplace(comm, arena, cfg);
    }

    double ckpt_time = 0.0;
    sim::PhaseBreakdown phases;
    core::DumpStats last{};
    int taken = 0;
    for (int iter = 1; iter <= spec.iterations; ++iter) {
      if (hpccg) {
        (void)hpccg->iterate(1);
      } else {
        (void)cm->step(1);
      }
      const bool fire = spec.checkpoint_every > 0
                            ? iter % spec.checkpoint_every == 0
                            : iter == spec.checkpoint_at;
      if (fire) {
        last = ckpt.checkpoint_now();
        ckpt_time += last.total_time_s;
        phases += last.phases;
        ++taken;
      }
    }
    comm.barrier();

    if (comm.rank() == 0) {
      result.completion_s = comm.clock().now();
      result.baseline_s = comm.clock().now() - ckpt_time;
      result.checkpoint_s = ckpt_time;
      result.phases = phases;
      result.per_rank_bytes = last.dataset_bytes;
      result.checkpoints = taken;
    }
    const auto g = core::Dumper::collect(comm, last);
    if (comm.rank() == 0) result.global = g;
  });
  return result;
}

// Canonical spec for each application at a given rank count.
inline BenchSpec hpccg_spec(int nranks) {
  BenchSpec spec;
  spec.app = App::kHpccg;
  spec.nranks = nranks;
  spec.iterations = 127;
  spec.checkpoint_at = 100;
  spec.checkpoint_every = 0;
  return spec;
}

inline BenchSpec cm1_spec(int nranks) {
  BenchSpec spec;
  spec.app = App::kCm1;
  spec.nranks = nranks;
  spec.iterations = 70;
  spec.checkpoint_at = 0;
  spec.checkpoint_every = 30;
  return spec;
}

// -- formatting ----------------------------------------------------------------

inline std::string human_bytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B", bytes);
  }
  return buf;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  if (quick_mode()) std::printf("(COLLREP_QUICK: rank counts reduced)\n");
  std::printf("================================================================\n");
}

}  // namespace collrep::bench
