// Micro-benchmarks (google-benchmark) for the core primitives: the
// dispatched data-plane kernels (GF(256) multiply-accumulate, CRC-32C,
// SHA-1 compression, CDC chunking), HMERGE, RANK_SHUFFLE, offset
// calculation, chunking + local dedup, and the serialization archive —
// the per-call costs that the simtime model's merge_entry_cost_s /
// chunk_overhead_s constants approximate.
//
// Every benchmark reports throughput (bytes_per_second or
// items_per_second); the kernel benches register one entry per *variant*
// so scripts/bench_kernels.sh can compute scalar-vs-SIMD speedups from
// the JSON output.  Run with --benchmark_repetitions=N for median-of-N
// (the script does); each bench declares an explicit warm-up window.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "apps/rng.hpp"
#include "chunk/cdc.hpp"
#include "chunk/dataset.hpp"
#include "core/fingerprint_set.hpp"
#include "core/local_dedup.hpp"
#include "core/planner.hpp"
#include "hash/hasher.hpp"
#include "kernels/kernels.hpp"
#include "simmpi/archive.hpp"

namespace {

using namespace collrep;

constexpr double kWarmupSeconds = 0.05;

std::vector<std::uint8_t> random_buffer(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> buf(n);
  apps::SplitMix64 rng(seed);
  rng.fill(buf);
  return buf;
}

// -- dispatched kernels, one benchmark per variant ----------------------------

constexpr std::size_t kKernelBytes = 64 * 1024;

void BM_GfMulAdd(benchmark::State& state, kernels::GfMulAddFn fn) {
  const auto in = random_buffer(kKernelBytes, 17);
  auto out = random_buffer(kKernelBytes, 23);
  for (auto _ : state) {
    fn(out.data(), in.data(), kKernelBytes, 0x57);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBytes));
}

void BM_Crc32c(benchmark::State& state, kernels::Crc32cFn fn) {
  const auto buf = random_buffer(kKernelBytes, 31);
  std::uint32_t crc = ~0u;
  for (auto _ : state) {
    crc = fn(crc, buf.data(), kKernelBytes);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBytes));
}

void BM_Sha1Blocks(benchmark::State& state, kernels::Sha1BlocksFn fn) {
  const auto buf = random_buffer(kKernelBytes, 41);
  std::uint32_t digest_state[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                   0x10325476u, 0xC3D2E1F0u};
  for (auto _ : state) {
    fn(digest_state, buf.data(), kKernelBytes / 64);
    benchmark::DoNotOptimize(digest_state);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBytes));
}

void BM_CdcChunking(benchmark::State& state, bool skip_ahead) {
  const auto buf = random_buffer(4 * 1024 * 1024, 53);
  chunk::Dataset ds;
  ds.add_segment(buf);
  chunk::CdcParams params;
  params.skip_ahead = skip_ahead;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunk::content_defined_refs(ds, params));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

// Two strictly ascending key sets of n entries sharing overlap_pct percent
// of their keys, with the shared keys scattered uniformly through each
// side's sorted order (the "naturally distributed redundancy" shape the
// paper's workloads produce, and the hardest case for run-detecting merge
// kernels: short alternating spans with duplicate islands).
std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>>
make_key_sets(std::size_t n, int overlap_pct, std::uint64_t seed) {
  const std::size_t shared = n * static_cast<std::size_t>(overlap_pct) / 100;
  const std::size_t total = 2 * n - shared;
  std::vector<std::uint64_t> pool(total);
  apps::SplitMix64 rng(seed);
  for (;;) {
    for (auto& k : pool) k = rng.next();
    std::sort(pool.begin(), pool.end());
    if (std::adjacent_find(pool.begin(), pool.end()) == pool.end()) break;
  }
  // Value-shuffle so the shared block ([n-shared, n)) lands at random key
  // positions once each side is re-sorted.
  for (std::size_t i = total - 1; i > 0; --i) {
    std::swap(pool[i], pool[rng.next() % (i + 1)]);
  }
  std::vector<std::uint64_t> a(pool.begin(),
                               pool.begin() + static_cast<std::ptrdiff_t>(n));
  std::vector<std::uint64_t> b(pool.end() - static_cast<std::ptrdiff_t>(n),
                               pool.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return {std::move(a), std::move(b)};
}

void BM_HmergeKeys(benchmark::State& state, kernels::HmergeFn fn) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int overlap = static_cast<int>(state.range(1));
  const auto [a, b] = make_key_sets(n, overlap, 0x9E3779B9u + n);
  std::vector<std::uint8_t> tags(a.size() + b.size());
  for (auto _ : state) {
    kernels::HmergeResult r = fn(a.data(), a.size(), b.data(), b.size(),
                                 tags.data());
    benchmark::DoNotOptimize(r);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.size() + b.size()));
}

void register_kernel_benches() {
  for (const auto& v : kernels::gf_variants()) {
    if (!v.available) continue;
    benchmark::RegisterBenchmark(("gf_mul_add/" + std::string(v.name)).c_str(),
                                 BM_GfMulAdd, v.mul_add)
        ->MinWarmUpTime(kWarmupSeconds);
  }
  for (const auto& v : kernels::crc32c_variants()) {
    if (!v.available) continue;
    benchmark::RegisterBenchmark(("crc32c/" + std::string(v.name)).c_str(),
                                 BM_Crc32c, v.fn)
        ->MinWarmUpTime(kWarmupSeconds);
  }
  for (const auto& v : kernels::sha1_variants()) {
    if (!v.available) continue;
    benchmark::RegisterBenchmark(("sha1_blocks/" + std::string(v.name)).c_str(),
                                 BM_Sha1Blocks, v.fn)
        ->MinWarmUpTime(kWarmupSeconds);
  }
  benchmark::RegisterBenchmark("cdc_chunking/reference", BM_CdcChunking, false)
      ->MinWarmUpTime(kWarmupSeconds);
  benchmark::RegisterBenchmark("cdc_chunking/skip_ahead", BM_CdcChunking, true)
      ->MinWarmUpTime(kWarmupSeconds);
  // The planned-merge kernel across the world-size sweep (4k = per-rank
  // sets at paper scale, 64k = reduction-tree roots, 1M = large-world
  // stress) and the duplicate-ratio sweep (percent of keys both sides
  // share, scattered).
  for (const auto& v : kernels::hmerge_variants()) {
    if (!v.available) continue;
    auto* bench = benchmark::RegisterBenchmark(
        ("hmerge_keys/" + std::string(v.name)).c_str(), BM_HmergeKeys, v.fn);
    for (std::int64_t n : {4096, 65536, 1048576}) {
      for (std::int64_t overlap : {0, 25, 75, 100}) {
        bench->Args({n, overlap});
      }
    }
    bench->MinWarmUpTime(kWarmupSeconds);
  }
}

// -- collective-dedup primitives ----------------------------------------------

core::BoundedFpSet make_set(int entries, int rank, int nranks, int k) {
  // Cap above the entry count so the F bound never truncates the bench
  // working set (1M-entry "large world" runs included).
  const auto f_cap = std::max(1u << 17, static_cast<unsigned>(2 * entries));
  core::BoundedFpSet s(f_cap, k, nranks);
  apps::SplitMix64 rng(static_cast<std::uint64_t>(rank) * 7919 + 13);
  for (int i = 0; i < entries; ++i) {
    s.add_local(hash::Fingerprint::from_u64(rng.next()), rank);
  }
  s.enforce_f();
  return s;
}

void BM_HMerge(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  // Build once, copy per iteration (merge_from consumes its argument).
  const auto proto_a = make_set(entries, 0, 4, 3);
  const auto proto_b = make_set(entries, 1, 4, 3);
  for (auto _ : state) {
    state.PauseTiming();
    auto a = proto_a;
    auto b = proto_b;
    state.ResumeTiming();
    benchmark::DoNotOptimize(a.merge_from(std::move(b)));
  }
  // entries/s over both operands (the linear merge scans 2 * entries).
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          entries);
}
BENCHMARK(BM_HMerge)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1048576)
    ->MinWarmUpTime(kWarmupSeconds);

// K-way HMERGE at a reduction-tree node: one accumulated set absorbing
// several children in a single multi-way pass (fan-in 4, the binomial
// tree's widest interior node at paper scale).
void BM_HMergeKway(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  constexpr int kFanIn = 4;
  const auto proto = make_set(entries, 0, kFanIn + 1, 3);
  std::vector<core::BoundedFpSet> proto_children;
  for (int c = 0; c < kFanIn; ++c) {
    proto_children.push_back(make_set(entries, c + 1, kFanIn + 1, 3));
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto acc = proto;
    auto children = proto_children;
    state.ResumeTiming();
    benchmark::DoNotOptimize(acc.merge_many(std::move(children)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (kFanIn + 1) * entries);
}
BENCHMARK(BM_HMergeKway)
    ->Arg(4096)
    ->Arg(65536)
    ->MinWarmUpTime(kWarmupSeconds);

void BM_RankShuffle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::SendMatrix m(n, 4);
  apps::SplitMix64 rng(7);
  for (int r = 0; r < n; ++r) {
    for (int p = 1; p < 4; ++p) m.at(r, p) = rng.next() % 1000;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rank_shuffle(m, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_RankShuffle)
    ->Arg(64)
    ->Arg(408)
    ->Arg(4096)
    ->MinWarmUpTime(kWarmupSeconds);

void BM_OffsetCalc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kK = 4;
  core::SendMatrix m(n, kK);
  apps::SplitMix64 rng(11);
  for (int r = 0; r < n; ++r) {
    for (int p = 1; p < kK; ++p) m.at(r, p) = rng.next() % 1000;
  }
  const auto shuffle = core::rank_shuffle(m, kK);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (int pos = 0; pos < n; ++pos) {
      for (int p = 1; p < kK; ++p) {
        sum += core::put_offset_chunks(m, shuffle, pos, p);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          (kK - 1));
}
BENCHMARK(BM_OffsetCalc)->Arg(408)->MinWarmUpTime(kWarmupSeconds);

void BM_LocalDedup(benchmark::State& state) {
  const auto pages = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(pages * 4096);
  apps::SplitMix64 rng(3);
  rng.fill(data);
  // 50% duplicate pages.
  for (std::size_t p = 1; p < pages; p += 2) {
    std::copy_n(data.begin(), 4096,
                data.begin() + static_cast<std::ptrdiff_t>(p * 4096));
  }
  chunk::Dataset ds;
  ds.add_segment(data);
  const chunk::Chunker chunker(ds, 4096);
  const auto& hasher = hash::hasher_for(hash::HashKind::kSha1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::local_dedup(chunker, hasher));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_LocalDedup)->Arg(64)->Arg(512)->MinWarmUpTime(kWarmupSeconds);

void BM_FpSetSerialization(benchmark::State& state) {
  auto s = make_set(static_cast<int>(state.range(0)), 0, 8, 3);
  for (auto _ : state) {
    const auto bytes = simmpi::to_bytes(s);
    benchmark::DoNotOptimize(
        simmpi::from_bytes<core::BoundedFpSet>(bytes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FpSetSerialization)
    ->Arg(1024)
    ->Arg(16384)
    ->MinWarmUpTime(kWarmupSeconds);

}  // namespace

int main(int argc, char** argv) {
  register_kernel_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
