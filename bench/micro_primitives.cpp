// Micro-benchmarks (google-benchmark) for the core primitives: HMERGE,
// RANK_SHUFFLE, offset calculation, chunking + local dedup, and the
// serialization archive — the per-call costs that the simtime model's
// merge_entry_cost_s / chunk_overhead_s constants approximate.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/rng.hpp"
#include "chunk/dataset.hpp"
#include "core/fingerprint_set.hpp"
#include "core/local_dedup.hpp"
#include "core/planner.hpp"
#include "hash/hasher.hpp"
#include "simmpi/archive.hpp"

namespace {

using namespace collrep;

core::BoundedFpSet make_set(int entries, int rank, int nranks, int k) {
  core::BoundedFpSet s(1u << 17, k, nranks);
  apps::SplitMix64 rng(static_cast<std::uint64_t>(rank) * 7919 + 13);
  for (int i = 0; i < entries; ++i) {
    s.add_local(hash::Fingerprint::from_u64(rng.next()), rank);
  }
  s.enforce_f();
  return s;
}

void BM_HMerge(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto a = make_set(entries, 0, 4, 3);
    auto b = make_set(entries, 1, 4, 3);
    state.ResumeTiming();
    benchmark::DoNotOptimize(a.merge_from(std::move(b)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          entries);
}
BENCHMARK(BM_HMerge)->Arg(256)->Arg(4096)->Arg(65536);

void BM_RankShuffle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::SendMatrix m(n, 4);
  apps::SplitMix64 rng(7);
  for (int r = 0; r < n; ++r) {
    for (int p = 1; p < 4; ++p) m.at(r, p) = rng.next() % 1000;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rank_shuffle(m, 4));
  }
}
BENCHMARK(BM_RankShuffle)->Arg(64)->Arg(408)->Arg(4096);

void BM_OffsetCalc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kK = 4;
  core::SendMatrix m(n, kK);
  apps::SplitMix64 rng(11);
  for (int r = 0; r < n; ++r) {
    for (int p = 1; p < kK; ++p) m.at(r, p) = rng.next() % 1000;
  }
  const auto shuffle = core::rank_shuffle(m, kK);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (int pos = 0; pos < n; ++pos) {
      for (int p = 1; p < kK; ++p) {
        sum += core::put_offset_chunks(m, shuffle, pos, p);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_OffsetCalc)->Arg(408);

void BM_LocalDedup(benchmark::State& state) {
  const auto pages = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(pages * 4096);
  apps::SplitMix64 rng(3);
  rng.fill(data);
  // 50% duplicate pages.
  for (std::size_t p = 1; p < pages; p += 2) {
    std::copy_n(data.begin(), 4096,
                data.begin() + static_cast<std::ptrdiff_t>(p * 4096));
  }
  chunk::Dataset ds;
  ds.add_segment(data);
  const chunk::Chunker chunker(ds, 4096);
  const auto& hasher = hash::hasher_for(hash::HashKind::kSha1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::local_dedup(chunker, hasher));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_LocalDedup)->Arg(64)->Arg(512);

void BM_FpSetSerialization(benchmark::State& state) {
  auto s = make_set(static_cast<int>(state.range(0)), 0, 8, 3);
  for (auto _ : state) {
    const auto bytes = simmpi::to_bytes(s);
    benchmark::DoNotOptimize(
        simmpi::from_bytes<core::BoundedFpSet>(bytes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FpSetSerialization)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
