// Ablation A1 (extension; the paper defers chunk-size selection, §IV):
// sweep the chunk size and report the dedup-ratio / overhead trade-off.
// Smaller chunks find more redundancy but cost more fingerprints and
// metadata; larger chunks miss sub-page duplicates.
#include <cstdio>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  using namespace collrep;
  bench::print_header(
      "Ablation: chunk size vs dedup quality and dedup-phase overhead",
      "paper SIV discussion (\"outside the scope of this work\")");

  const int n = bench::scaled_ranks(128);
  std::printf("%10s %14s %10s %14s %12s   (%d procs, HPCCG, K=3)\n",
              "chunk", "unique", "unique %", "dedup time", "gview", n);

  for (const std::size_t chunk : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    const std::vector<bench::CellCfg> cfgs = {
        {core::Strategy::kNoDedup, 3, true, 1u << 17, chunk},
        {core::Strategy::kCollDedup, 3, true, 1u << 17, chunk},
    };
    const auto out = bench::run_matrix(bench::App::kHpccg, n, 5, cfgs);
    const double total =
        static_cast<double>(out.cells[0].global.total_unique_bytes);
    const double unique =
        static_cast<double>(out.cells[1].global.total_unique_bytes);
    const double dedup_time =
        out.cells[1].max_phases.hash_s + out.cells[1].max_phases.reduction_s;
    std::printf("%10zu %14s %9.1f%% %13.4fs %12u\n", chunk,
                bench::human_bytes(unique).c_str(), 100.0 * unique / total,
                dedup_time, out.cells[1].gview_entries);
  }
  std::printf(
      "\nExpected: unique %% grows with chunk size (coarser matching);\n"
      "dedup time falls (fewer fingerprints to hash, merge and ship).\n");
  return 0;
}
