// Ablation A3 (paper §IV: "our approach fully supports other hash
// functions if a better trade-off between performance and collision chance
// is desired"): google-benchmark throughput of every registered
// fingerprint function over page-sized chunks.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/rng.hpp"
#include "hash/hasher.hpp"

namespace {

using namespace collrep;

void BM_Fingerprint(benchmark::State& state) {
  const auto kind = static_cast<hash::HashKind>(state.range(0));
  const auto chunk_bytes = static_cast<std::size_t>(state.range(1));
  const auto& hasher = hash::hasher_for(kind);

  std::vector<std::uint8_t> data(chunk_bytes);
  apps::SplitMix64 rng(42);
  rng.fill(data);

  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.fingerprint(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk_bytes));
  state.SetLabel(std::string(hash::to_string(kind)));
}

void RegisterAll() {
  for (const auto kind : {hash::HashKind::kSha1, hash::HashKind::kXx64,
                          hash::HashKind::kFnv64, hash::HashKind::kCrc32c}) {
    for (const std::int64_t chunk : {512, 4096, 65536}) {
      const std::string name = std::string("BM_Fingerprint/") +
                               std::string(hash::to_string(kind)) + "/" +
                               std::to_string(chunk);
      benchmark::RegisterBenchmark(name.c_str(), BM_Fingerprint)
          ->Args({static_cast<std::int64_t>(kind), chunk});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
