// Reproduces Table I: application completion time using a replication
// factor of 3 under weak scaling, for all three approaches plus the
// no-checkpointing baseline.  Runs the full application schedules from the
// paper: HPCCG for 127 CG iterations with a checkpoint at iteration 100;
// CM1 for 70 steps with a checkpoint every 30 steps.
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace collrep;
using bench::App;

struct PaperRow {
  int nranks;
  double no_dedup_s;
  double local_dedup_s;
  double coll_dedup_s;
  double baseline_s;
};

void run_table(App app, const std::vector<PaperRow>& paper) {
  std::printf("\n--- %s (K = 3) ---\n", bench::app_name(app));
  std::printf("%8s | %38s | %44s\n", "", "measured (simulated seconds)",
              "paper (wall seconds on Shamrock)");
  std::printf("%8s | %9s %9s %9s %9s | %9s %9s %9s %9s\n", "procs", "full",
              "local", "coll", "base", "full", "local", "coll", "base");

  for (const auto& row : paper) {
    const int n = bench::scaled_ranks(row.nranks);
    double measured[3] = {0, 0, 0};
    double baseline = 0;
    int i = 0;
    for (const auto strategy :
         {core::Strategy::kNoDedup, core::Strategy::kLocalDedup,
          core::Strategy::kCollDedup}) {
      auto spec = app == App::kHpccg ? bench::hpccg_spec(n)
                                     : bench::cm1_spec(n);
      spec.k = 3;
      spec.strategy = strategy;
      // The headline table uses a larger sub-block than the sweep benches
      // so the fingerprint metadata-to-payload ratio sits closer to the
      // paper's 4 KiB/1.5 GB operating point (see EXPERIMENTS.md).
      spec.hpccg_n = 16;
      spec.cm_nx = spec.cm_ny = 32;
      const auto result = bench::run_app_bench(spec);
      measured[i++] = result.completion_s;
      baseline = result.baseline_s;  // identical across strategies
    }
    std::printf("%8d | %9.3f %9.3f %9.3f %9.3f | %9.0f %9.0f %9.0f %9.0f\n",
                n, measured[0], measured[1], measured[2], baseline,
                row.no_dedup_s, row.local_dedup_s, row.coll_dedup_s,
                row.baseline_s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  bench::print_header(
      "Completion time using a replication factor of 3 (baseline = no "
      "checkpointing)",
      "Table I");
  std::printf(
      "Per-rank data is laptop-scaled (paper: 1.5 GB / 0.8 GB per rank), so\n"
      "absolute seconds differ; compare the column ordering and the\n"
      "full/local/coll ratios.\n");

  run_table(App::kHpccg, {{1, 148, 113, 113, 82},
                          {64, 921, 390, 227, 152},
                          {196, 1004, 447, 278, 186},
                          {408, 1188, 547, 375, 279}});
  run_table(App::kCm1, {{12, 1401, 524, 242, 178},
                        {120, 1522, 734, 367, 259},
                        {264, 1647, 808, 505, 366},
                        {408, 1687, 828, 558, 382}});

  std::printf(
      "\nPaper @408: HPCCG coll-dedup 2.8x faster than local-dedup, 9.8x\n"
      "faster than no-dedup (checkpoint overhead over baseline); CM1 2.5x /\n"
      "7.4x.\n");
  return 0;
}
