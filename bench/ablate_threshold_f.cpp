// Ablation A2: quality of the bounded top-F relaxation.  The paper fixes
// F = 2^17 and argues correctness is unaffected while dedup quality
// depends on which F fingerprints survive; this sweep quantifies that
// dependence: small F degrades toward local-dedup, large F converges to
// the exact global dedup.
#include <cstdio>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  using namespace collrep;
  bench::print_header(
      "Ablation: threshold F vs dedup quality and reduction overhead",
      "paper SIII-B relaxation (F most frequent fingerprints)");

  const int n = bench::scaled_ranks(192);
  const std::vector<bench::CellCfg> base = {
      {core::Strategy::kNoDedup, 3},
      {core::Strategy::kLocalDedup, 3},
  };
  const auto ref = bench::run_matrix(bench::App::kHpccg, n, 5, base);
  const double total =
      static_cast<double>(ref.cells[0].global.total_unique_bytes);
  const double local =
      static_cast<double>(ref.cells[1].global.total_unique_bytes);
  std::printf("no-dedup total: %s; local-dedup: %s (%.1f%%)\n",
              bench::human_bytes(total).c_str(),
              bench::human_bytes(local).c_str(), 100.0 * local / total);

  std::printf("\n%10s %14s %10s %16s %12s   (%d procs, HPCCG, K=3)\n", "F",
              "unique", "unique %", "reduction time", "gview", n);
  for (const std::uint32_t f_log : {4u, 6u, 8u, 10u, 12u, 14u, 17u}) {
    const std::vector<bench::CellCfg> cfgs = {
        {core::Strategy::kCollDedup, 3, true, 1u << f_log},
    };
    const auto out = bench::run_matrix(bench::App::kHpccg, n, 5, cfgs);
    const double unique =
        static_cast<double>(out.cells[0].global.total_unique_bytes);
    std::printf("%9u^ %14s %9.1f%% %15.4fs %12u\n", f_log,
                bench::human_bytes(unique).c_str(), 100.0 * unique / total,
                out.cells[0].max_phases.reduction_s,
                out.cells[0].gview_entries);
  }
  std::printf(
      "\nExpected: unique %% falls monotonically with F until the working\n"
      "set fits (then flat = exact solution); reduction time grows with F.\n"
      "(F column shows log2.)\n");
  return 0;
}
