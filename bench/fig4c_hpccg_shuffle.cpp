// Reproduces Figure 4(c): impact of rank shuffling on the maximal receive
// size for HPCCG (408 processes; paper reports ~8% reduction).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  collrep::bench::print_shuffle_impact(collrep::bench::App::kHpccg,
                                       "Figure 4(c)");
  return 0;
}
