// Reproduces Figure 3(a): total size of unique content identified by each
// approach for HPCCG-196, CM1-256, HPCCG-408 and CM1-408.  The paper
// measures (at 408 processes) local-dedup reducing the total to ~33%
// (HPCCG) / ~30% (CM1) of the raw data, and coll-dedup to ~6% / ~5%.
#include <cstdio>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  using namespace collrep;
  using bench::App;
  bench::print_header("Total size of unique content (lower is better)",
                      "Figure 3(a)");

  struct Config {
    App app;
    int nranks;
  };
  const Config configs[] = {{App::kHpccg, bench::scaled_ranks(196)},
                            {App::kCm1, bench::scaled_ranks(256)},
                            {App::kHpccg, bench::scaled_ranks(408)},
                            {App::kCm1, bench::scaled_ranks(408)}};

  std::printf("%-12s %14s %14s %14s %10s %10s\n", "config", "no-dedup",
              "local-dedup", "coll-dedup", "local %", "coll %");
  for (const auto& [app, nranks] : configs) {
    const std::vector<bench::CellCfg> cfgs = {
        {core::Strategy::kNoDedup, 3},
        {core::Strategy::kLocalDedup, 3},
        {core::Strategy::kCollDedup, 3},
    };
    const auto out = bench::run_matrix(app, nranks, 5, cfgs);
    const double total =
        static_cast<double>(out.cells[0].global.total_unique_bytes);
    const double local =
        static_cast<double>(out.cells[1].global.total_unique_bytes);
    const double coll =
        static_cast<double>(out.cells[2].global.total_unique_bytes);
    char label[32];
    std::snprintf(label, sizeof label, "%s-%d", bench::app_name(app), nranks);
    std::printf("%-12s %14s %14s %14s %9.1f%% %9.1f%%\n", label,
                bench::human_bytes(total).c_str(),
                bench::human_bytes(local).c_str(),
                bench::human_bytes(coll).c_str(), 100.0 * local / total,
                100.0 * coll / total);
  }
  std::printf(
      "\nPaper @408 procs: local-dedup 33%% (HPCCG) / 30%% (CM1) of raw;\n"
      "coll-dedup 6%% (HPCCG) / 5%% (CM1).\n");
  return 0;
}
