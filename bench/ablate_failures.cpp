// Ablation F (paper §VI future work): surviving store failures during the
// collective.  Sweeps the number of stores killed mid-exchange (seeded,
// deterministic), lets DUMP_OUTPUT complete in degraded mode, swaps the dead
// stores for blank replacements, and runs the dedup-aware REPAIR scrub.
// The scrub ships only the replication shortfall — natural duplicates and
// surviving replicas count toward K — so its traffic is compared against the
// cost of the brute-force alternative, a full re-dump.
//
//   --seed=<n>      victim-selection seed (default 1); scripts/fault_sweep.sh
//                   checks that the same seed reproduces bit-identical output
//   --metrics=<f>   MetricsRegistry JSON (see bench_util.hpp)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/schedule.hpp"

namespace {

using namespace collrep;

constexpr int kK = 3;
constexpr std::size_t kChunk = 512;
constexpr std::size_t kChunksPerRank = 48;

// Paper-style mix: three quarters of each image is content shared by every
// rank (the natural redundancy the repair pass leans on), the rest private.
std::vector<std::uint8_t> mixed_dataset(int rank) {
  std::vector<std::uint8_t> data(kChunksPerRank * kChunk);
  for (std::size_t p = 0; p < kChunksPerRank; ++p) {
    const bool shared = (p % 4) != 0;
    for (std::size_t i = 0; i < kChunk; ++i) {
      data[p * kChunk + i] = static_cast<std::uint8_t>(
          shared ? (p * 131 + i * 7) : (p * 131 + i * 7 + 10007 * (rank + 1)));
    }
  }
  return data;
}

struct Scenario {
  std::vector<int> victims;
  core::DumpStats dump;            // rank 0's view
  core::GlobalDumpStats global;
  core::RepairStats repair;        // global fields identical on all ranks
};

Scenario run_scenario(int nranks, int fails, std::uint64_t seed) {
  Scenario out;
  std::vector<chunk::ChunkStore> stores;
  stores.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    stores.emplace_back(chunk::StoreMode::kAccounting);
  }
  std::vector<chunk::ChunkStore*> ptrs;
  for (auto& s : stores) ptrs.push_back(&s);

  fault::FaultSchedule sched(seed);
  out.victims = sched.add_random_store_failures(nranks, fails,
                                                "dump.exchange.mid", 1);
  sched.arm(ptrs);
  sched.attach(bench::telemetry());

  simmpi::RuntimeOptions opts;
  opts.telemetry = bench::telemetry();
  opts.faults = &sched;
  simmpi::Runtime rt(nranks, opts);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    const auto data = mixed_dataset(r);
    chunk::Dataset ds;
    ds.add_segment(data);

    core::DumpConfig cfg;
    cfg.chunk_bytes = kChunk;
    cfg.payload_exchange = false;
    cfg.epoch = 1;
    core::Dumper dumper(comm, stores[static_cast<std::size_t>(r)], cfg);
    const auto stats = dumper.dump_output(ds, kK);
    const auto g = core::Dumper::collect(comm, stats);

    // Blank replacement disk for every store the schedule killed, then the
    // collective scrub tops the replicas back up to K.
    if (stores[static_cast<std::size_t>(r)].failed()) {
      stores[static_cast<std::size_t>(r)].recover_empty();
    }
    comm.barrier();
    const auto rep = core::repair_replicas(comm, ptrs, kK);

    if (r == 0) {
      out.dump = stats;
      out.global = g;
      out.repair = rep;
    }
  });
  return out;
}

std::string victims_string(const std::vector<int>& victims) {
  if (victims.empty()) return "-";
  std::string s;
  for (int v : victims) {
    if (!s.empty()) s += ",";
    s += std::to_string(v);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry(argc, argv);
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }

  const int nranks = bench::quick_mode() ? 8 : 64;
  bench::print_header(
      "Ablation F: store failures mid-collective, repair vs full re-dump",
      "section VI (future work): fault handling inside DUMP_OUTPUT");
  std::printf("ranks=%d  K=%d  chunk=%zu B  image=%s/rank  seed=%llu\n",
              nranks, kK, kChunk,
              bench::human_bytes(static_cast<double>(kChunksPerRank * kChunk))
                  .c_str(),
              static_cast<unsigned long long>(seed));

  // The brute-force recovery is re-dumping everything; its cost is the
  // healthy (fails = 0) dump of the same images.
  const Scenario baseline = run_scenario(nranks, 0, seed);
  const double redump_bytes =
      static_cast<double>(baseline.global.total_sent_bytes);
  const double redump_time = baseline.global.completion_time_s;

  std::printf(
      "\n%5s  %-10s  %5s  %12s  %5s  %12s  %10s  %7s\n", "fails", "victims",
      "min_k", "under-repl", "lost", "repair sent", "repair t", "vs dump");
  for (int fails = 0; fails <= 3; ++fails) {
    const Scenario s =
        fails == 0 ? baseline : run_scenario(nranks, fails, seed);
    const auto& rep = s.repair;
    const double pct =
        redump_bytes > 0.0
            ? 100.0 * static_cast<double>(rep.resent_bytes) / redump_bytes
            : 0.0;
    std::printf("%5d  %-10s  %5d  %12s  %5llu  %12s  %8.4fs  %6.1f%%\n",
                fails, victims_string(s.victims).c_str(),
                s.global.min_k_achieved,
                bench::human_bytes(
                    static_cast<double>(s.global.total_under_replicated_bytes))
                    .c_str(),
                static_cast<unsigned long long>(rep.lost_chunks),
                bench::human_bytes(static_cast<double>(rep.resent_bytes))
                    .c_str(),
                rep.total_time_s, pct);
  }
  std::printf(
      "\nfull re-dump ships %s in %.4fs; the scrub ships only the shortfall\n"
      "(natural duplicates and surviving replicas already count toward K).\n"
      "fails = K = %d can leave fully-private chunks with zero replicas:\n"
      "those are reported lost, not silently re-replicated.\n",
      bench::human_bytes(redump_bytes).c_str(), redump_time, kK);
  return 0;
}
