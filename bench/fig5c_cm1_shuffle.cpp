// Reproduces Figure 5(c): impact of rank shuffling on the maximal receive
// size for CM1 (408 processes; paper reports a reduction approaching 30%).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  collrep::bench::print_shuffle_impact(collrep::bench::App::kCm1,
                                       "Figure 5(c)");
  return 0;
}
