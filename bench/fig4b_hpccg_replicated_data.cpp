// Reproduces Figure 4(b): HPCCG average and maximal amount of replicated
// data per process for an increasing replication factor (408 processes).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  collrep::bench::print_replicated_data(collrep::bench::App::kHpccg,
                                        "Figure 4(b)");
  return 0;
}
