// Ablation A5 (paper §II related work): fixed-size vs content-defined
// chunking.  On page-aligned checkpoints (the paper's setting) fixed
// chunking is cheap and sufficient; when the same content appears at
// shifted offsets across ranks, fixed chunking finds nothing and CDC
// recovers the redundancy.
#include <cstdio>
#include <vector>

#include "apps/rng.hpp"
#include "bench_util.hpp"

namespace {

using namespace collrep;

// Same base content on every rank, shifted by a rank-specific prefix.
std::vector<std::uint8_t> shifted_dataset(int rank, std::size_t bytes) {
  std::vector<std::uint8_t> data(bytes);
  apps::SplitMix64 rng(4242);
  rng.fill(data);
  data.insert(data.begin(), static_cast<std::size_t>(rank * 13 + 1), 0x77);
  return data;
}

struct Result {
  std::uint64_t unique = 0;
  std::uint64_t total = 0;
  double dedup_time = 0.0;
};

Result run(int nranks, bool cdc) {
  Result out;
  std::vector<chunk::ChunkStore> stores;
  for (int r = 0; r < nranks; ++r) {
    stores.emplace_back(chunk::StoreMode::kAccounting);
  }
  std::vector<core::DumpStats> stats(static_cast<std::size_t>(nranks));
  simmpi::Runtime rt(nranks);
  rt.run([&](simmpi::Comm& comm) {
    const int r = comm.rank();
    const auto data = shifted_dataset(r, 96 * 1024);
    chunk::Dataset ds;
    ds.add_segment(data);
    core::DumpConfig cfg;
    cfg.payload_exchange = false;
    if (cdc) {
      cfg.chunking = core::ChunkingMode::kContentDefined;
      cfg.cdc.min_bytes = 256;
      cfg.cdc.avg_bytes = 1024;
      cfg.cdc.max_bytes = 4096;
    } else {
      cfg.chunk_bytes = 1024;
    }
    core::Dumper dumper(comm, stores[static_cast<std::size_t>(r)], cfg);
    stats[static_cast<std::size_t>(r)] = dumper.dump_output(ds, 3);
  });
  for (const auto& s : stats) {
    out.unique += s.owned_unique_bytes;
    out.total += s.dataset_bytes;
    out.dedup_time = std::max(
        out.dedup_time, s.phases.hash_s + s.phases.reduction_s);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  bench::print_header(
      "Fixed-size vs content-defined chunking on offset-shifted content",
      "paper SII related work (static vs content-defined dedup)");

  const int nranks = bench::scaled_ranks(64);
  const auto fixed = run(nranks, false);
  const auto cdc = run(nranks, true);

  std::printf("%-18s %14s %10s %14s   (%d ranks)\n", "chunking", "unique",
              "unique %", "dedup time", nranks);
  std::printf("%-18s %14s %9.1f%% %13.5fs\n", "fixed 1 KiB",
              bench::human_bytes(static_cast<double>(fixed.unique)).c_str(),
              100.0 * fixed.unique / fixed.total, fixed.dedup_time);
  std::printf("%-18s %14s %9.1f%% %13.5fs\n", "CDC 256/1K/4K",
              bench::human_bytes(static_cast<double>(cdc.unique)).c_str(),
              100.0 * cdc.unique / cdc.total, cdc.dedup_time);
  std::printf(
      "\nExpected: fixed chunking sees ~100%% unique (every boundary is\n"
      "shifted); CDC realigns and collapses the cross-rank redundancy to\n"
      "roughly one copy, at a higher chunking cost (rolling hash).\n");
  return 0;
}
