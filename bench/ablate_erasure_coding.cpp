// Ablation A4 (paper §VI future work): erasure codes as a replacement for
// replication.  Compares, on the same workload and failure tolerance
// (tolerate 2 device losses):
//   * coll-dedup replication with K = 3, and
//   * the EC hybrid (group_size = 4, parity = 2) where naturally
//     duplicated chunks still count as replicas and only the remainder is
//     Reed-Solomon coded.
#include <cstdio>
#include <vector>

#include "apps/synth.hpp"
#include "bench_util.hpp"
#include "core/group_parity.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  using namespace collrep;
  bench::print_header(
      "Erasure coding vs replication at equal failure tolerance (2 losses)",
      "paper SVI future work (erasure codes as replication replacement)");

  const int nranks = bench::scaled_ranks(96);
  apps::SynthSpec spec;
  spec.chunk_bytes = 1024;
  spec.chunks = 96;
  spec.local_dup = 0.2;
  spec.global_shared = 0.5;
  spec.global_pool = 256;
  spec.seed = 3;

  // --- replication: coll-dedup, K = 3 ---------------------------------------
  std::uint64_t rep_extra = 0;  // replica bytes beyond the primary copy
  std::uint64_t rep_traffic = 0;
  double rep_time = 0.0;
  {
    std::vector<chunk::ChunkStore> stores;
    for (int r = 0; r < nranks; ++r) {
      stores.emplace_back(chunk::StoreMode::kAccounting);
    }
    simmpi::Runtime rt(nranks);
    std::vector<core::DumpStats> stats(static_cast<std::size_t>(nranks));
    std::vector<std::vector<std::uint8_t>> data(
        static_cast<std::size_t>(nranks));
    rt.run([&](simmpi::Comm& comm) {
      const int r = comm.rank();
      data[static_cast<std::size_t>(r)] =
          apps::synth_dataset(r, nranks, spec);
      chunk::Dataset ds;
      ds.add_segment(data[static_cast<std::size_t>(r)]);
      core::DumpConfig cfg;
      cfg.chunk_bytes = spec.chunk_bytes;
      cfg.payload_exchange = false;
      core::Dumper dumper(comm, stores[static_cast<std::size_t>(r)], cfg);
      stats[static_cast<std::size_t>(r)] = dumper.dump_output(ds, 3);
    });
    for (const auto& s : stats) {
      rep_extra += s.recv_bytes;  // received replicas = extra stored copies
      rep_traffic += s.sent_bytes;
      rep_time = std::max(rep_time, s.total_time_s);
    }
  }

  // --- erasure coding: hybrid group parity (m = 4, r = 2) -------------------
  std::uint64_t ec_extra = 0;
  std::uint64_t ec_traffic = 0;
  double ec_time = 0.0;
  {
    core::EcConfig cfg;
    cfg.group_size = 4;
    cfg.parity = 2;
    cfg.chunk_bytes = spec.chunk_bytes;
    std::vector<chunk::ChunkStore> stores;
    for (int r = 0; r < nranks; ++r) {
      stores.emplace_back(chunk::StoreMode::kAccounting);
    }
    simmpi::Runtime rt(nranks);
    std::vector<core::EcDumpStats> stats(static_cast<std::size_t>(nranks));
    rt.run([&](simmpi::Comm& comm) {
      const int r = comm.rank();
      const auto data = apps::synth_dataset(r, nranks, spec);
      chunk::Dataset ds;
      ds.add_segment(data);
      core::EcDumper dumper(comm, stores[static_cast<std::size_t>(r)], cfg);
      stats[static_cast<std::size_t>(r)] = dumper.dump_output(ds);
    });
    for (const auto& s : stats) {
      ec_extra += s.parity_bytes;
      ec_traffic += s.sent_bytes;
      ec_time = std::max(ec_time, s.total_time_s);
    }
  }

  std::printf("%-26s %16s %16s %14s\n", "scheme", "extra storage",
              "repl. traffic", "dump time");
  std::printf("%-26s %16s %16s %13.5fs\n", "replication (coll, K=3)",
              bench::human_bytes(static_cast<double>(rep_extra)).c_str(),
              bench::human_bytes(static_cast<double>(rep_traffic)).c_str(),
              rep_time);
  std::printf("%-26s %16s %16s %13.5fs\n", "EC hybrid (m=4, r=2)",
              bench::human_bytes(static_cast<double>(ec_extra)).c_str(),
              bench::human_bytes(static_cast<double>(ec_traffic)).c_str(),
              ec_time);
  std::printf(
      "\nExpected: EC stores ~r/m = 0.5x extra bytes per coded byte versus\n"
      "replication's 2x, at similar or higher traffic (the parity ring\n"
      "chain moves r shards per hop) — the classic storage-for-bandwidth\n"
      "trade the paper's future work anticipates.\n");
  return 0;
}
