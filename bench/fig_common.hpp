// Matrix runner for the figure benches: build the application state once
// per rank count, then evaluate many (strategy, K, shuffle, F, chunk)
// configurations against that same memory image.  This keeps the 408-rank
// sweeps tractable while every cell still executes the full pipeline.
#pragma once

#include <vector>

#include "bench_util.hpp"

namespace collrep::bench {

struct CellCfg {
  core::Strategy strategy = core::Strategy::kCollDedup;
  int k = 3;
  bool rank_shuffle = true;
  std::uint32_t threshold_f = 1u << 17;
  std::size_t chunk_bytes = 512;  // scaled page size; see bench_util.hpp
  hash::HashKind hash_kind = hash::HashKind::kSha1;
};

struct CellResult {
  CellCfg cfg;
  double dump_s = 0.0;
  sim::PhaseBreakdown max_phases;
  core::GlobalDumpStats global;
  std::uint32_t gview_entries = 0;
};

struct MatrixOut {
  double baseline_s = 0.0;      // simulated app time without checkpoints
  std::uint64_t per_rank_bytes = 0;
  std::vector<CellResult> cells;
};

inline MatrixOut run_matrix(App app, int nranks, int app_iterations,
                            const std::vector<CellCfg>& cfgs) {
  MatrixOut out;
  out.cells.resize(cfgs.size());

  // One fresh accounting store per (cell, rank).
  std::vector<std::vector<chunk::ChunkStore>> stores(cfgs.size());
  for (auto& per_cell : stores) {
    per_cell.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      per_cell.emplace_back(chunk::StoreMode::kAccounting);
    }
  }

  simmpi::RuntimeOptions opts;
  opts.telemetry = telemetry();
  simmpi::Runtime rt(nranks, opts);
  rt.run([&](simmpi::Comm& comm) {
    ftrt::TrackedArena arena(4096);
    std::optional<apps::HpccgSolver> hpccg;
    std::optional<apps::MiniCmModel> cm;
    if (app == App::kHpccg) {
      apps::HpccgConfig cfg;
      cfg.nx = cfg.ny = cfg.nz = 12;
      hpccg.emplace(comm, arena, cfg);
      (void)hpccg->iterate(app_iterations);
    } else {
      apps::MiniCmConfig cfg;
      cfg.nx = cfg.ny = 24;
      cfg.nz = 8;
      cm.emplace(comm, arena, cfg);
      (void)cm->step(app_iterations);
    }
    comm.barrier();
    if (comm.rank() == 0) out.baseline_s = comm.clock().now();

    const auto snapshot = arena.snapshot();
    if (comm.rank() == 0) out.per_rank_bytes = snapshot.total_bytes();

    for (std::size_t c = 0; c < cfgs.size(); ++c) {
      core::DumpConfig dump_cfg;
      dump_cfg.strategy = cfgs[c].strategy;
      dump_cfg.chunk_bytes = cfgs[c].chunk_bytes;
      dump_cfg.threshold_f = cfgs[c].threshold_f;
      dump_cfg.rank_shuffle = cfgs[c].rank_shuffle;
      dump_cfg.hash_kind = cfgs[c].hash_kind;
      dump_cfg.payload_exchange = false;
      core::Dumper dumper(
          comm, stores[c][static_cast<std::size_t>(comm.rank())], dump_cfg);
      const auto stats = dumper.dump_output(snapshot, cfgs[c].k);
      const auto g = core::Dumper::collect(comm, stats);
      if (comm.rank() == 0) {
        out.cells[c].cfg = cfgs[c];
        out.cells[c].dump_s = stats.total_time_s;
        out.cells[c].max_phases = g.max_phases;
        out.cells[c].global = g;
        out.cells[c].gview_entries = stats.gview_entries;
      }
    }
  });
  return out;
}

// ---- shared figure printers (HPCCG and CM1 variants of Figs. 3b/3c, 4, 5) ----

inline std::vector<int> sweep_ranks(App app) {
  if (app == App::kHpccg) {
    return {scaled_ranks(16), scaled_ranks(64), scaled_ranks(128),
            scaled_ranks(256), scaled_ranks(408)};
  }
  return {scaled_ranks(12), scaled_ranks(48), scaled_ranks(120),
          scaled_ranks(264), scaled_ranks(408)};
}

// Figs. 3(b)/3(c): overhead of the collective hash value reduction for an
// increasing number of processes, F = 2^17, K in {2, 4, 6}; local-dedup's
// scale-independent hashing is the baseline curve.
inline void print_reduction_overhead(App app, const char* figure) {
  print_header(
      app == App::kHpccg
          ? "Overhead of the collective hash value reduction (HPCCG)"
          : "Overhead of the collective hash value reduction (CM1)",
      figure);
  std::printf(
      "%8s %14s %14s %14s %14s   (simulated seconds; F = 2^17)\n", "procs",
      "local-dedup", "coll K=2", "coll K=4", "coll K=6");

  for (const int n : sweep_ranks(app)) {
    std::vector<CellCfg> cfgs;
    cfgs.push_back({core::Strategy::kLocalDedup, 2});
    for (const int k : {2, 4, 6}) {
      cfgs.push_back({core::Strategy::kCollDedup, k});
    }
    const auto out = run_matrix(app, n, 3, cfgs);
    // Dedup overhead = hashing (+ reduction for coll).
    const auto dedup_time = [](const CellResult& cell) {
      return cell.max_phases.hash_s + cell.max_phases.reduction_s;
    };
    std::printf("%8d %14.4f %14.4f %14.4f %14.4f\n", n,
                dedup_time(out.cells[0]), dedup_time(out.cells[1]),
                dedup_time(out.cells[2]), dedup_time(out.cells[3]));
  }
  std::printf(
      "\nPaper shape: coll-dedup overhead grows with scale but the three K\n"
      "curves stay close together (the reduction absorbs extra replicas\n"
      "cheaply); local-dedup is flat.  HPCCG overheads sit below CM1's.\n");
}

// Figs. 4(a)/5(a): increase in execution time vs replication factor.
inline void print_exec_increase(App app, const char* figure,
                                double paper_baseline_s) {
  const int n = scaled_ranks(408);
  print_header(app == App::kHpccg
                   ? "Increase in execution time vs replication factor (HPCCG)"
                   : "Increase in execution time vs replication factor (CM1)",
               figure);

  std::vector<CellCfg> cfgs;
  for (const int k : {1, 2, 3, 4, 5, 6}) {
    cfgs.push_back({core::Strategy::kNoDedup, k});
    cfgs.push_back({core::Strategy::kLocalDedup, k});
    cfgs.push_back({core::Strategy::kCollDedup, k});
  }
  const auto out = run_matrix(app, n, 8, cfgs);

  std::printf("%4s %16s %16s %16s   (simulated seconds, %d procs)\n", "K",
              "no-dedup", "local-dedup", "coll-dedup", n);
  for (std::size_t i = 0; i < cfgs.size(); i += 3) {
    std::printf("%4d %16.4f %16.4f %16.4f\n", cfgs[i].k, out.cells[i].dump_s,
                out.cells[i + 1].dump_s, out.cells[i + 2].dump_s);
  }
  const double nd1 = out.cells[0].dump_s;
  const double nd6 = out.cells[15].dump_s;
  const double ld6 = out.cells[16].dump_s;
  const double cd6 = out.cells[17].dump_s;
  std::printf(
      "\nMeasured @K=6: no-dedup/coll = %.1fx, local/coll = %.1fx, "
      "no-dedup K6/K1 growth = %.1fx\n",
      nd6 / cd6, ld6 / cd6, nd6 / nd1);
  std::printf(
      "Paper @K=6 (%s, baseline %.0fs): coll-dedup %s faster than no-dedup, "
      "%s faster than local-dedup;\nno-dedup grows %s from K=1 to K=6.\n",
      app_name(app), paper_baseline_s,
      app == App::kHpccg ? "6x" : ">8x", app == App::kHpccg ? "2x" : "2.3x",
      app == App::kHpccg ? "3x" : "5x");
}

// Figs. 4(b)/5(b): average and maximal replicated data per process.
inline void print_replicated_data(App app, const char* figure) {
  const int n = scaled_ranks(408);
  print_header(
      app == App::kHpccg
          ? "Amount of replicated data per process vs K (HPCCG)"
          : "Amount of replicated data per process vs K (CM1)",
      figure);

  std::vector<CellCfg> cfgs;
  for (const int k : {2, 3, 4, 5, 6}) {
    cfgs.push_back({core::Strategy::kNoDedup, k});
    cfgs.push_back({core::Strategy::kLocalDedup, k});
    cfgs.push_back({core::Strategy::kCollDedup, k});
  }
  const auto out = run_matrix(app, n, 6, cfgs);

  std::printf("%4s | %12s %12s | %12s %12s | %12s %12s   (%d procs)\n", "K",
              "full avg", "full max", "local avg", "local max", "coll avg",
              "coll max", n);
  for (std::size_t i = 0; i < cfgs.size(); i += 3) {
    const auto& nd = out.cells[i].global;
    const auto& ld = out.cells[i + 1].global;
    const auto& cd = out.cells[i + 2].global;
    std::printf(
        "%4d | %12s %12s | %12s %12s | %12s %12s\n", cfgs[i].k,
        human_bytes(nd.avg_sent_bytes).c_str(),
        human_bytes(static_cast<double>(nd.max_sent_bytes)).c_str(),
        human_bytes(ld.avg_sent_bytes).c_str(),
        human_bytes(static_cast<double>(ld.max_sent_bytes)).c_str(),
        human_bytes(cd.avg_sent_bytes).c_str(),
        human_bytes(static_cast<double>(cd.max_sent_bytes)).c_str());
  }
  std::printf(
      "\nPaper shape: coll-dedup's average send volume sits far below\n"
      "local-dedup's (5x at K=6 for HPCCG) with a visible avg-max gap that\n"
      "grows with K; no-dedup's avg == max for HPCCG (uniform datasets).\n");
}

// Figs. 4(c)/5(c): impact of rank shuffling on the maximal receive size.
inline void print_shuffle_impact(App app, const char* figure) {
  const int n = scaled_ranks(408);
  print_header(app == App::kHpccg
                   ? "Impact of rank shuffling on max receive size (HPCCG)"
                   : "Impact of rank shuffling on max receive size (CM1)",
               figure);

  std::vector<CellCfg> cfgs;
  for (const int k : {2, 3, 4, 5, 6}) {
    cfgs.push_back({core::Strategy::kCollDedup, k, /*rank_shuffle=*/false});
    cfgs.push_back({core::Strategy::kCollDedup, k, /*rank_shuffle=*/true});
  }
  const auto out = run_matrix(app, n, 6, cfgs);

  std::printf("%4s %18s %18s %12s   (%d procs)\n", "K", "coll-no-shuffle",
              "coll-shuffle", "reduction", n);
  for (std::size_t i = 0; i < cfgs.size(); i += 2) {
    const double plain =
        static_cast<double>(out.cells[i].global.max_recv_bytes);
    const double shuffled =
        static_cast<double>(out.cells[i + 1].global.max_recv_bytes);
    std::printf("%4d %18s %18s %11.1f%%\n", cfgs[i].k,
                human_bytes(plain).c_str(), human_bytes(shuffled).c_str(),
                plain > 0 ? 100.0 * (plain - shuffled) / plain : 0.0);
  }
  std::printf(
      "\nPaper shape: no difference at K=2, a visible and roughly constant\n"
      "gap from K=3 on (up to 8%% for HPCCG, ~30%% for CM1).\n");
}

}  // namespace collrep::bench
