// Ablation A7 (paper §I/§II: "some form of redundancy elimination (i.e.,
// compression or deduplication) before the replication"): the compression
// baseline.  Compresses each rank's checkpoint with LZSS before
// replication and compares reduction and CPU cost against local and
// collective deduplication on the same images.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "chunk/compress.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  using namespace collrep;
  bench::print_header(
      "Compression vs deduplication as pre-replication redundancy "
      "elimination",
      "paper SI/SII (compression baseline, refs [17][18])");

  const int n = bench::scaled_ranks(96);

  // Gather per-rank images once (HPCCG then CM1).
  for (const auto app : {bench::App::kHpccg, bench::App::kCm1}) {
    std::vector<std::vector<std::uint8_t>> images(
        static_cast<std::size_t>(n));
    std::vector<core::DumpStats> local_stats(static_cast<std::size_t>(n));
    std::vector<core::DumpStats> coll_stats(static_cast<std::size_t>(n));
    std::vector<chunk::ChunkStore> stores_a;
    std::vector<chunk::ChunkStore> stores_b;
    for (int r = 0; r < n; ++r) {
      stores_a.emplace_back(chunk::StoreMode::kAccounting);
      stores_b.emplace_back(chunk::StoreMode::kAccounting);
    }

    simmpi::Runtime rt(n);
    rt.run([&](simmpi::Comm& comm) {
      ftrt::TrackedArena arena(4096);
      std::optional<apps::HpccgSolver> hpccg;
      std::optional<apps::MiniCmModel> cm;
      if (app == bench::App::kHpccg) {
        apps::HpccgConfig cfg;
        cfg.nx = cfg.ny = cfg.nz = 12;
        hpccg.emplace(comm, arena, cfg);
        (void)hpccg->iterate(5);
      } else {
        apps::MiniCmConfig cfg;
        cm.emplace(comm, arena, cfg);
        (void)cm->step(5);
      }
      const auto snapshot = arena.snapshot();
      auto& image = images[static_cast<std::size_t>(comm.rank())];
      for (std::size_t s = 0; s < snapshot.segment_count(); ++s) {
        image.insert(image.end(), snapshot.segment(s).begin(),
                     snapshot.segment(s).end());
      }
      core::DumpConfig cfg;
      cfg.chunk_bytes = 512;
      cfg.payload_exchange = false;
      cfg.strategy = core::Strategy::kLocalDedup;
      core::Dumper a(comm, stores_a[static_cast<std::size_t>(comm.rank())],
                     cfg);
      local_stats[static_cast<std::size_t>(comm.rank())] =
          a.dump_output(snapshot, 3);
      cfg.strategy = core::Strategy::kCollDedup;
      core::Dumper b(comm, stores_b[static_cast<std::size_t>(comm.rank())],
                     cfg);
      coll_stats[static_cast<std::size_t>(comm.rank())] =
          b.dump_output(snapshot, 3);
    });

    std::uint64_t raw = 0;
    std::uint64_t compressed = 0;
    double compress_cpu_s = 0.0;
    for (const auto& image : images) {
      raw += image.size();
      compressed += chunk::lzss_compress(image).size();
      compress_cpu_s = std::max(
          compress_cpu_s,
          static_cast<double>(image.size()) / chunk::kLzssCompressBps);
    }
    std::uint64_t local_unique = 0;
    std::uint64_t coll_unique = 0;
    double dedup_cpu_s = 0.0;
    for (int r = 0; r < n; ++r) {
      local_unique += local_stats[static_cast<std::size_t>(r)]
                          .owned_unique_bytes;
      coll_unique += coll_stats[static_cast<std::size_t>(r)]
                         .owned_unique_bytes;
      dedup_cpu_s = std::max(
          dedup_cpu_s,
          coll_stats[static_cast<std::size_t>(r)].phases.hash_s +
              coll_stats[static_cast<std::size_t>(r)].phases.reduction_s);
    }

    std::printf("\n--- %s (%d ranks) ---\n", bench::app_name(app), n);
    std::printf("%-26s %14s %10s %14s\n", "approach", "data to replicate",
                "% of raw", "cpu (max/rank)");
    std::printf("%-26s %14s %9.1f%% %13.5fs\n", "LZSS compression",
                bench::human_bytes(static_cast<double>(compressed)).c_str(),
                100.0 * compressed / raw, compress_cpu_s);
    std::printf("%-26s %14s %9.1f%% %13s\n", "local dedup",
                bench::human_bytes(static_cast<double>(local_unique)).c_str(),
                100.0 * local_unique / raw, "(in dump)");
    std::printf("%-26s %14s %9.1f%% %13.5fs\n", "collective dedup",
                bench::human_bytes(static_cast<double>(coll_unique)).c_str(),
                100.0 * coll_unique / raw, dedup_cpu_s);
  }
  std::printf(
      "\nExpected: compression removes intra-rank redundancy only, so it\n"
      "lands near local-dedup territory; it cannot see the cross-rank\n"
      "duplicates that give coll-dedup its advantage — the paper's case\n"
      "for treating distributed redundancy as first-class.\n");
  return 0;
}
