// Motivation experiment (paper §I): a decoupled parallel file system
// ingests every rank's checkpoint through one shared pipe, so collective
// dump time grows linearly with scale — while partner replication to
// node-local storage rides the per-node network/disk resources, and
// coll-dedup shrinks even that.  Reproduces the paper's motivating
// argument (cf. Jones et al. dump-time projections) with measured numbers.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ftrt/multilevel.hpp"

int main(int argc, char** argv) {
  const collrep::bench::TelemetryScope telemetry(argc, argv);
  using namespace collrep;
  bench::print_header(
      "Collective dump time: decoupled PFS vs partner replication",
      "paper SI motivation (I/O bandwidth wall of decoupled storage)");

  std::printf("%8s %14s %16s %16s   (simulated seconds, K = 3)\n", "procs",
              "PFS dump", "full replication", "coll-dedup");

  for (const int n :
       {bench::scaled_ranks(48), bench::scaled_ranks(120),
        bench::scaled_ranks(264), bench::scaled_ranks(408)}) {
    double pfs_time = 0.0;
    double full_time = 0.0;
    double coll_time = 0.0;

    // PFS dump of the CM1 image.
    {
      ftrt::PfsStore pfs;
      simmpi::Runtime rt(n);
      rt.run([&](simmpi::Comm& comm) {
        ftrt::TrackedArena arena(4096);
        apps::MiniCmConfig mc;
        apps::MiniCmModel model(comm, arena, mc);
        (void)model.step(3);
        const auto stats = ftrt::pfs_dump(comm, pfs, arena.snapshot(), 512,
                                          hash::HashKind::kSha1, 1);
        if (comm.rank() == 0) pfs_time = stats.total_time_s;
      });
    }
    // Partner replication (full and coll-dedup) on the same image.
    for (const auto strategy :
         {core::Strategy::kNoDedup, core::Strategy::kCollDedup}) {
      std::vector<chunk::ChunkStore> stores;
      for (int r = 0; r < n; ++r) {
        stores.emplace_back(chunk::StoreMode::kAccounting);
      }
      simmpi::Runtime rt(n);
      rt.run([&](simmpi::Comm& comm) {
        ftrt::TrackedArena arena(4096);
        apps::MiniCmConfig mc;
        apps::MiniCmModel model(comm, arena, mc);
        (void)model.step(3);
        core::DumpConfig cfg;
        cfg.strategy = strategy;
        cfg.chunk_bytes = 512;
        cfg.payload_exchange = false;
        core::Dumper dumper(comm, stores[static_cast<std::size_t>(comm.rank())],
                            cfg);
        const auto stats = dumper.dump_output(arena.snapshot(), 3);
        if (comm.rank() == 0) {
          (strategy == core::Strategy::kNoDedup ? full_time : coll_time) =
              stats.total_time_s;
        }
      });
    }
    std::printf("%8d %13.4fs %15.4fs %15.4fs\n", n, pfs_time, full_time,
                coll_time);
  }
  std::printf(
      "\nReading: the PFS column grows ~linearly with the rank count (one\n"
      "shared ingest pipe), while both replication columns flatten once\n"
      "every node is busy (per-node NIC/HDD).  Extrapolate the PFS line\n"
      "and it crosses full replication within O(10^3) ranks and coll-dedup\n"
      "far earlier — at exascale rank counts the decoupled store is\n"
      "untenable, which is the paper's opening argument.\n");
  return 0;
}
